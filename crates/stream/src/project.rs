//! Pre-resolved tuple projections.
//!
//! A [`Projector`] captures the positions of an attribute set once, so the
//! per-tuple hot path (`NIPS` line 2: `a = t[A], b = t[B]`) is a couple of
//! indexed loads instead of schema lookups.

use crate::item::{ItemKey, INLINE_LEN};
use crate::schema::{AttrSet, Schema};
use crate::tuple::Tuple;

/// Projects tuples onto a fixed attribute set.
///
/// ```
/// use imp_stream::{Projector, Schema, Tuple};
///
/// let schema = Schema::new([("src", 1 << 32), ("dst", 1 << 32), ("port", 65_536)]);
/// let lhs = Projector::new(&schema, schema.attr_set(&["src", "port"]));
///
/// let tuple = Tuple::new([10u64, 20, 443]);
/// assert_eq!(lhs.project(&tuple).as_slice(), &[10, 443]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Projector {
    /// Positions to read, ascending.
    positions: Vec<usize>,
    attrs: AttrSet,
}

impl Projector {
    /// Resolves `set` against `schema`.
    ///
    /// # Panics
    /// If `set` references an attribute outside the schema's arity.
    pub fn new(schema: &Schema, set: AttrSet) -> Self {
        let positions: Vec<usize> = set.iter().map(|id| id.index()).collect();
        if let Some(&max) = positions.last() {
            assert!(
                max < schema.arity(),
                "attribute {max} out of range for arity {}",
                schema.arity()
            );
        }
        Self {
            positions,
            attrs: set,
        }
    }

    /// The attribute set this projector reads.
    pub fn attrs(&self) -> AttrSet {
        self.attrs
    }

    /// Number of projected attributes.
    pub fn width(&self) -> usize {
        self.positions.len()
    }

    /// Projects a tuple into an [`ItemKey`].
    #[inline]
    pub fn project(&self, tuple: &Tuple) -> ItemKey {
        let vals = tuple.values();
        if self.positions.len() <= INLINE_LEN {
            let mut buf = [0u64; INLINE_LEN];
            for (slot, &pos) in buf.iter_mut().zip(&self.positions) {
                *slot = vals[pos];
            }
            ItemKey::Inline {
                len: self.positions.len() as u8,
                vals: buf,
            }
        } else {
            ItemKey::Spilled(self.positions.iter().map(|&p| vals[p]).collect())
        }
    }

    /// Projects into a caller buffer and returns it as a slice — the
    /// zero-allocation path used when only a hash of the projection is
    /// needed.
    #[inline]
    pub fn project_into<'buf>(&self, tuple: &Tuple, buf: &'buf mut Vec<u64>) -> &'buf [u64] {
        buf.clear();
        let vals = tuple.values();
        buf.extend(self.positions.iter().map(|&p| vals[p]));
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new([("A", 10), ("B", 10), ("C", 10), ("D", 10), ("E", 10)])
    }

    #[test]
    fn projects_in_attribute_order() {
        let s = schema();
        let p = Projector::new(&s, s.attr_set(&["D", "A"]));
        let t = Tuple::from([10u64, 11, 12, 13, 14]);
        // Ascending attr id: A (pos 0) then D (pos 3).
        assert_eq!(p.project(&t).as_slice(), &[10, 13]);
    }

    #[test]
    fn empty_projection() {
        let s = schema();
        let p = Projector::new(&s, AttrSet::EMPTY);
        assert_eq!(p.project(&Tuple::from([1u64, 2, 3, 4, 5])).len(), 0);
        assert_eq!(p.width(), 0);
    }

    #[test]
    fn project_into_matches_project() {
        let s = schema();
        let p = Projector::new(&s, s.attr_set(&["B", "C", "E"]));
        let t = Tuple::from([0u64, 1, 2, 3, 4]);
        let mut buf = Vec::new();
        assert_eq!(p.project_into(&t, &mut buf), p.project(&t).as_slice());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_attribute_rejected() {
        let s = Schema::new([("A", 2)]);
        let _ = Projector::new(&s, AttrSet::from_bits(0b10));
    }

    #[test]
    fn equal_tuples_project_equal_keys() {
        let s = schema();
        let p = Projector::new(&s, s.attr_set(&["A", "E"]));
        let t1 = Tuple::from([7u64, 0, 0, 0, 9]);
        let t2 = Tuple::from([7u64, 5, 5, 5, 9]);
        assert_eq!(p.project(&t1), p.project(&t2));
    }
}
