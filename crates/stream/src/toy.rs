//! The paper's Table 1: the "Network Traffic" example window.
//!
//! Eight tuples over `(Source, Destination, Service, Time)`. Every worked
//! example in §3 of the paper is computed on this window, so the test-suites
//! of the core crate and the quickstart example all start here.

use crate::dictionary::DictionarySet;
use crate::schema::Schema;
use crate::source::VecSource;
use crate::tuple::Tuple;

/// The symbolic rows of Table 1, in stream order.
pub const TABLE1_ROWS: [[&str; 4]; 8] = [
    ["S1", "D2", "WWW", "Morning"],
    ["S2", "D1", "FTP", "Morning"],
    ["S1", "D3", "WWW", "Morning"],
    ["S2", "D1", "P2P", "Noon"],
    ["S1", "D3", "P2P", "Afternoon"],
    ["S1", "D3", "WWW", "Afternoon"],
    ["S1", "D3", "P2P", "Afternoon"],
    ["S3", "D3", "P2P", "Night"],
];

/// The Table 1 schema: three sources, three destinations, three services,
/// four times of day.
pub fn network_schema() -> Schema {
    Schema::new([
        ("Source", 3),
        ("Destination", 3),
        ("Service", 3),
        ("Time", 4),
    ])
}

/// Encodes Table 1, returning the tuples plus the dictionaries used.
pub fn network_traffic() -> (Schema, Vec<Tuple>, DictionarySet) {
    let schema = network_schema();
    let mut dicts = DictionarySet::new(schema.arity());
    let tuples = TABLE1_ROWS
        .iter()
        .map(|row| Tuple::new(dicts.encode_row(row)))
        .collect();
    (schema, tuples, dicts)
}

/// Table 1 as a ready-to-consume source.
pub fn network_traffic_source() -> VecSource {
    let (schema, tuples, _) = network_traffic();
    VecSource::new(schema, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::project::Projector;
    use crate::source::TupleSource;
    use std::collections::{HashMap, HashSet};

    #[test]
    fn eight_tuples_three_of_each_dimension() {
        let (schema, tuples, dicts) = network_traffic();
        assert_eq!(tuples.len(), 8);
        assert_eq!(schema.arity(), 4);
        assert_eq!(dicts.attr(0).len(), 3, "three sources");
        assert_eq!(dicts.attr(1).len(), 3, "three destinations");
        assert_eq!(dicts.attr(2).len(), 3, "three services");
        assert_eq!(dicts.attr(3).len(), 4, "four times");
    }

    #[test]
    fn paper_worked_example_multiplicity() {
        // §3.1: itemset a = (S1, D3) over A = {Source, Destination} has
        // multiplicity 2 w.r.t. B = {Service} (WWW and P2P) and support 4.
        let (schema, tuples, dicts) = network_traffic();
        let pa = Projector::new(&schema, schema.attr_set(&["Source", "Destination"]));
        let pb = Projector::new(&schema, schema.attr_set(&["Service"]));
        let s1 = dicts.attr(0).code("S1").unwrap();
        let d3 = dicts.attr(1).code("D3").unwrap();
        let mut support = 0;
        let mut services = HashSet::new();
        for t in &tuples {
            let a = pa.project(t);
            if a.as_slice() == [s1, d3] {
                support += 1;
                services.insert(pb.project(t));
            }
        }
        assert_eq!(support, 4);
        assert_eq!(services.len(), 2);
    }

    #[test]
    fn paper_worked_example_destination_implies_source() {
        // §1: D2 appears only with S1, D1 only with S2 (implication count 2
        // for strict Destination → Source); D3 qualifies at 80%.
        let (schema, tuples, dicts) = network_traffic();
        let pd = Projector::new(&schema, schema.attr_set(&["Destination"]));
        let ps = Projector::new(&schema, schema.attr_set(&["Source"]));
        let mut partners: HashMap<u64, HashSet<u64>> = HashMap::new();
        let mut per_pair: HashMap<(u64, u64), u64> = HashMap::new();
        let mut support: HashMap<u64, u64> = HashMap::new();
        for t in &tuples {
            let d = pd.project(t).as_slice()[0];
            let s = ps.project(t).as_slice()[0];
            partners.entry(d).or_default().insert(s);
            *per_pair.entry((d, s)).or_default() += 1;
            *support.entry(d).or_default() += 1;
        }
        let strict = partners.values().filter(|p| p.len() == 1).count();
        assert_eq!(strict, 2);
        // D3: 5 tuples, 4 with S1 → top-1 confidence 80%.
        let d3 = dicts.attr(1).code("D3").unwrap();
        let s1 = dicts.attr(0).code("S1").unwrap();
        assert_eq!(support[&d3], 5);
        assert_eq!(per_pair[&(d3, s1)], 4);
    }

    #[test]
    fn source_yields_full_window() {
        let mut src = network_traffic_source();
        let mut n = 0;
        while src.next_tuple().is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
    }
}
