//! Experiment harness: one binary per table/figure of the paper, plus the
//! shared machinery they use.
//!
//! | paper artifact | binary |
//! |----------------|--------|
//! | Figure 4 (`c = 1`)            | `fig4` |
//! | Figure 5 (`c = 2`)            | `fig5` |
//! | Figure 6 (`c = 4`)            | `fig6` |
//! | Table 3 + Table 4             | `table4` |
//! | Figure 7 (workloads A and B)  | `fig7` |
//! | Lemma 2 / §4.3.3 (analysis)   | `fringe_ablation` |
//! | §6.1 stochastic averaging     | `bitmap_ablation` |
//! | §4.7.1 hash families          | `hash_ablation` |
//!
//! Every binary accepts `--help`; defaults are scaled to finish on a laptop
//! in minutes while preserving the paper's shapes, and `--full` restores
//! the paper-scale repetition counts.

//! Beyond the paper's artifacts, `bench-telemetry` emits machine-readable
//! run reports (`BENCH_ingest.json` / `BENCH_estimate.json`) consumed by
//! the CI regression gate — see [`telemetry`] and DESIGN.md §8.3.

pub mod args;
pub mod figures;
pub mod olap_experiment;
pub mod params;
pub mod table;
pub mod telemetry;

pub use args::Args;
