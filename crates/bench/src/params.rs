//! Table 5 — the algorithm parameters used throughout §6.2, kept in one
//! place so every binary and the printed headers agree.

/// Number of concurrent bitmaps for NIPS/CI (stochastic averaging).
pub const NIPS_BITMAPS: usize = 64;
/// NIPS/CI fringe size.
pub const NIPS_FRINGE: u32 = 4;
/// Maximum multiplicity for the Figure 7 workloads.
pub const NIPS_K: u32 = 2;
/// Distinct Sampling sample-size bound (same space as NIPS/CI: 1920).
pub const DS_SAMPLE_SIZE: usize = 1920;
/// Distinct Sampling per-itemset bound `t` from Table 5 (subsumed by the
/// `K`-bounded per-itemset state; retained for the printed header).
pub const DS_BOUND_T: usize = 39;
/// ILC approximation parameter ε.
pub const ILC_EPSILON: f64 = 0.01;

/// Renders Table 5 as the paper prints it.
pub fn render_table5() -> String {
    let mut t = crate::table::Table::new(["parameter", "value"]);
    t.row(["NIPS/CI bitmaps", &NIPS_BITMAPS.to_string()]);
    t.row(["NIPS/CI K", &NIPS_K.to_string()]);
    t.row(["NIPS/CI fringe", &NIPS_FRINGE.to_string()]);
    t.row(["DS sample size", &DS_SAMPLE_SIZE.to_string()]);
    t.row(["DS bound t", &DS_BOUND_T.to_string()]);
    t.row(["ILC ε", &ILC_EPSILON.to_string()]);
    t.render()
}

#[cfg(test)]
mod tests {
    #[test]
    fn matches_paper_table5() {
        assert_eq!(super::NIPS_BITMAPS, 64);
        assert_eq!(super::NIPS_K, 2);
        assert_eq!(super::DS_SAMPLE_SIZE, 1920);
        assert_eq!(super::DS_BOUND_T, 39);
        assert_eq!(super::ILC_EPSILON, 0.01);
        // The paper's memory identity: (2^F − 1)·bitmaps·K = 1920.
        assert_eq!(
            ((1u64 << super::NIPS_FRINGE) - 1) * super::NIPS_BITMAPS as u64 * super::NIPS_K as u64,
            super::DS_SAMPLE_SIZE as u64
        );
    }

    #[test]
    fn table5_renders() {
        let s = super::render_table5();
        assert!(s.contains("NIPS/CI bitmaps"));
        assert!(s.contains("1920"));
    }
}
