//! The §6.1 accuracy experiment behind Figures 4, 5 and 6: mean relative
//! error of the implication-count estimate versus the actual implication
//! count, for bounded (F = 4) and unbounded fringes, across cardinalities
//! `‖A‖` and `one-to-c` shapes.
//!
//! Per experiment cell: generate a Dataset One instance, stream it through
//! the exact counter (ground truth) and both estimator variants, and record
//! `|actual − measured| / actual`. Cells are repeated `reps` times with
//! distinct seeds (the paper uses 100) and repetitions are spread across
//! CPU cores.

use std::thread;

use imp_baselines::{ExactCounter, ImplicationCounter};
use imp_core::{EstimatorConfig, Fringe};
use imp_datagen::{DatasetOne, DatasetOneSpec};
use imp_sketch::estimate::{relative_error, RunningStats};

use crate::params::{NIPS_BITMAPS, NIPS_FRINGE};

/// One experiment cell of a Figure 4/5/6 panel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorVsCountSpec {
    /// The one-to-`c` shape (Figure 4: 1, Figure 5: 2, Figure 6: 4).
    pub c: u32,
    /// `‖A‖`.
    pub cardinality: u64,
    /// Planted implication count as a fraction of `‖A‖` (x-axis).
    pub fraction: f64,
    /// Repetitions (paper: 100).
    pub reps: u32,
    /// Base seed; repetition `i` uses `base_seed + i`.
    pub base_seed: u64,
}

/// Aggregated results of one cell.
#[derive(Debug, Clone)]
pub struct ErrorVsCountResult {
    /// The cell parameters.
    pub spec: ErrorVsCountSpec,
    /// Mean exact implication count across repetitions.
    pub actual: RunningStats,
    /// Relative error of the bounded-fringe estimator.
    pub bounded: RunningStats,
    /// Relative error of the unbounded-fringe estimator.
    pub unbounded: RunningStats,
}

/// Runs one cell, spreading repetitions over `threads` workers.
pub fn run_cell(spec: ErrorVsCountSpec, threads: usize) -> ErrorVsCountResult {
    let threads = threads.clamp(1, spec.reps.max(1) as usize);
    let per_thread: Vec<Vec<u32>> = (0..threads)
        .map(|t| {
            (0..spec.reps)
                .filter(|r| *r as usize % threads == t)
                .collect()
        })
        .collect();
    let partials: Vec<(RunningStats, RunningStats, RunningStats)> = thread::scope(|s| {
        let handles: Vec<_> = per_thread
            .iter()
            .map(|reps| s.spawn(move || run_reps(spec, reps)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    let mut result = ErrorVsCountResult {
        spec,
        actual: RunningStats::new(),
        bounded: RunningStats::new(),
        unbounded: RunningStats::new(),
    };
    for (actual, bounded, unbounded) in &partials {
        result.actual.merge(actual);
        result.bounded.merge(bounded);
        result.unbounded.merge(unbounded);
    }
    result
}

fn run_reps(spec: ErrorVsCountSpec, reps: &[u32]) -> (RunningStats, RunningStats, RunningStats) {
    let mut actual = RunningStats::new();
    let mut bounded = RunningStats::new();
    let mut unbounded = RunningStats::new();
    for &rep in reps {
        let seed = spec.base_seed.wrapping_add(rep as u64);
        let (truth, est_b, est_u) = run_once(spec, seed);
        actual.push(truth);
        bounded.push(relative_error(truth, est_b));
        unbounded.push(relative_error(truth, est_u));
    }
    (actual, bounded, unbounded)
}

/// One repetition: returns `(exact S, bounded Ŝ, unbounded Ŝ)`. All
/// three counters — the exact ground truth and both estimator variants —
/// run through the common [`ImplicationCounter`] interface.
pub fn run_once(spec: ErrorVsCountSpec, seed: u64) -> (f64, f64, f64) {
    let implied = (spec.cardinality as f64 * spec.fraction).round() as u64;
    let ds_spec = DatasetOneSpec::paper(spec.cardinality, implied, spec.c, seed);
    let cond = ds_spec.paper_conditions();
    let data = DatasetOne::generate(&ds_spec);

    let mut exact = ExactCounter::new(cond);
    let mut est_b = EstimatorConfig::new(cond)
        .bitmaps(NIPS_BITMAPS)
        .fringe(Fringe::Bounded(NIPS_FRINGE))
        .seed(seed ^ 0xfeed)
        .build();
    let mut est_u = EstimatorConfig::new(cond)
        .bitmaps(NIPS_BITMAPS)
        .fringe(Fringe::Unbounded)
        .seed(seed ^ 0xfeed)
        .build();
    let mut counters: [&mut dyn ImplicationCounter; 3] = [&mut exact, &mut est_b, &mut est_u];
    for &(a, b) in &data.pairs {
        for counter in counters.iter_mut() {
            counter.update(&[a], &[b]);
        }
    }
    let [exact, est_b, est_u] = counters;
    (
        exact.implication_count(),
        est_b.implication_count(),
        est_u.implication_count(),
    )
}

/// The x-axis fractions of the paper's panels (10% … 90%).
pub fn paper_fractions(full: bool) -> Vec<f64> {
    if full {
        (1..=9).map(|i| i as f64 / 10.0).collect()
    } else {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    }
}

/// Default repetitions per cardinality, scaled to keep laptop runtimes in
/// minutes. `--full` restores the paper's 100.
pub fn default_reps(cardinality: u64, full: bool) -> u32 {
    if full {
        100
    } else {
        match cardinality {
            0..=200 => 30,
            201..=2_000 => 10,
            2_001..=20_000 => 3,
            _ => 2,
        }
    }
}

/// Renders a Figure 4/5/6 panel as a table.
pub fn render_panel(results: &[ErrorVsCountResult]) -> crate::table::Table {
    let mut t = crate::table::Table::new([
        "‖A‖",
        "S/‖A‖",
        "actual S",
        "bounded err",
        "±dev",
        "unbounded err",
        "±dev",
    ]);
    for r in results {
        t.row([
            r.spec.cardinality.to_string(),
            format!("{:.0}%", r.spec.fraction * 100.0),
            format!("{:.0}", r.actual.mean()),
            crate::table::fmt_pct(r.bounded.mean()),
            crate::table::fmt_pct(r.bounded.stddev()),
            crate::table::fmt_pct(r.unbounded.mean()),
            crate::table::fmt_pct(r.unbounded.stddev()),
        ]);
    }
    t
}

/// Shared `main` for the `fig4` / `fig5` / `fig6` binaries.
pub fn figure_main(figure: &str, c: u32, default_cards: &[u64]) {
    let usage = format!(
        "reproduce {figure} (mean relative error vs implication count, c = {c})\n\
         usage: {figure} [--cards 100,1000] [--reps N] [--seed S] \
         [--threads N] [--csv out.csv] [--full]\n\
         --full restores the paper scale (9 fractions, 100 repetitions)"
    );
    let args = crate::Args::parse(
        &usage,
        &["cards", "reps", "seed", "threads", "csv"],
        &["full"],
    );
    let full = args.flag("full");
    let cards: Vec<u64> = match args.get("cards") {
        Some(raw) => raw
            .split(',')
            .map(|x| x.trim().parse().expect("cardinality must be an integer"))
            .collect(),
        None => default_cards.to_vec(),
    };
    let seed: u64 = args.get_or("seed", 0x5150);
    let threads: usize = args.get_or(
        "threads",
        std::thread::available_parallelism().map_or(1, |n| n.get()),
    );
    println!("== {figure}: one-to-{c} implications, ψ = 90%, σ = 50, 64 bitmaps, fringe 4 ==");
    let mut all = Vec::new();
    for &card in &cards {
        let reps = args.get_or("reps", default_reps(card, full));
        let mut results = Vec::new();
        for fraction in paper_fractions(full) {
            let spec = ErrorVsCountSpec {
                c,
                cardinality: card,
                fraction,
                reps,
                base_seed: seed,
            };
            results.push(run_cell(spec, threads));
        }
        println!("\n‖A‖ = {card} ({reps} repetitions per point)");
        print!("{}", render_panel(&results).render());
        all.extend(results);
    }
    if let Some(path) = args.get("csv") {
        let t = render_panel(&all);
        t.write_csv(std::path::Path::new(path)).expect("write csv");
        println!("\nwrote {path}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rep_is_deterministic() {
        let spec = ErrorVsCountSpec {
            c: 1,
            cardinality: 100,
            fraction: 0.5,
            reps: 1,
            base_seed: 7,
        };
        let a = run_once(spec, 7);
        let b = run_once(spec, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn cell_errors_are_moderate_at_small_scale() {
        // A smoke-level reproduction of one Figure 4 point: ‖A‖ = 1000,
        // S = 50%, c = 1, a few reps. The paper reports 5–10% mean error;
        // we allow head-room for the tiny rep count.
        let spec = ErrorVsCountSpec {
            c: 1,
            cardinality: 1000,
            fraction: 0.5,
            reps: 4,
            base_seed: 11,
        };
        let r = run_cell(spec, 2);
        assert_eq!(r.bounded.count(), 4);
        assert!(
            r.actual.mean() > 400.0 && r.actual.mean() < 600.0,
            "actual {actual}",
            actual = r.actual.mean()
        );
        assert!(r.bounded.mean() < 0.30, "bounded err {}", r.bounded.mean());
        assert!(
            r.unbounded.mean() < 0.30,
            "unbounded err {}",
            r.unbounded.mean()
        );
    }

    #[test]
    fn threading_does_not_change_aggregates() {
        let spec = ErrorVsCountSpec {
            c: 2,
            cardinality: 100,
            fraction: 0.3,
            reps: 6,
            base_seed: 3,
        };
        let a = run_cell(spec, 1);
        let b = run_cell(spec, 3);
        assert_eq!(a.bounded.count(), b.bounded.count());
        assert!((a.bounded.mean() - b.bounded.mean()).abs() < 1e-12);
        assert!((a.actual.mean() - b.actual.mean()).abs() < 1e-12);
    }

    #[test]
    fn panel_renders() {
        let spec = ErrorVsCountSpec {
            c: 1,
            cardinality: 100,
            fraction: 0.1,
            reps: 2,
            base_seed: 1,
        };
        let r = run_cell(spec, 1);
        let t = render_panel(std::slice::from_ref(&r));
        assert_eq!(t.len(), 1);
        assert!(t.render().contains("100"));
    }
}
