//! Figure 5: mean relative error vs implication count, `c = 2`, panels for
//! `‖A‖ ∈ {100, 1 000, 10 000, 100 000}` (largest panel behind `--cards`).

fn main() {
    imp_bench::figures::figure_main("fig5", 2, &[100, 1_000, 10_000]);
}
