//! Figure 6: mean relative error vs implication count, `c = 4`, `‖A‖ = 100`.

fn main() {
    imp_bench::figures::figure_main("fig6", 4, &[100]);
}
