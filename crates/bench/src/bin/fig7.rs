//! Figure 7: relative error vs stream size for NIPS/CI, Distinct Sampling
//! and ILC, on workloads A (`{A,E,G} → B`) and B (`E → B`), for
//! σ ∈ {5, 50} and ψ1 ∈ {0.6, 0.8}. Also prints the Table 5 parameters
//! and the §6.2 memory comparison.

use imp_bench::olap_experiment::{run_workload, scaled_checkpoints, Workload};
use imp_bench::table::{fmt_pct, Table};
use imp_bench::{params, Args};
use imp_datagen::olap::OlapSpec;

fn main() {
    let usage = "reproduce Figure 7 (relative error vs stream size)\n\
                 usage: fig7 [--workload A|B|both] [--tuples N] [--seed S] \
                 [--csv out.csv] [--full]\n\
                 --full runs the paper's 5.38M-tuple stream (default 1.35M)";
    let args = Args::parse(usage, &["workload", "tuples", "seed", "csv"], &["full"]);
    let total: u64 = if args.flag("full") {
        5_381_203
    } else {
        args.get_or("tuples", 1_345_000)
    };
    let seed: u64 = args.get_or("seed", 7);
    let workloads: Vec<Workload> = match args.get("workload").unwrap_or("both") {
        "both" => vec![Workload::A, Workload::B],
        w => vec![Workload::parse(w).unwrap_or_else(|| {
            eprintln!("--workload must be A, B or both");
            std::process::exit(2);
        })],
    };

    println!("== Table 5: algorithm parameters ==");
    print!("{}", params::render_table5());

    let checkpoints = scaled_checkpoints(total);
    let mut csv = Table::new([
        "workload", "sigma", "psi", "tuples", "actual", "nips_err", "ds_err", "ilc_err",
        "nips_mem", "ds_mem", "ilc_mem",
    ]);
    for &wl in &workloads {
        let name = match wl {
            Workload::A => "A ({A,E,G} → B)",
            Workload::B => "B (E → B)",
        };
        println!("\n== Figure 7, workload {name} ==");
        let rows = run_workload(
            wl,
            OlapSpec::default(),
            total,
            &checkpoints,
            &[5, 50],
            &[0.6, 0.8],
            seed,
        );
        for &sigma in &[5u64, 50] {
            println!("\n-- σ = {sigma} --");
            let mut t = Table::new([
                "Tuples",
                "actual S",
                "NIPS/CI(.6)",
                "NIPS/CI(.8)",
                "DS(.6)",
                "DS(.8)",
                "ILC(.6)",
                "ILC(.8)",
            ]);
            for &cp in &checkpoints {
                let pick = |psi: f64| {
                    rows.iter()
                        .find(|r| r.tuples == cp && r.sigma == sigma && r.psi == psi)
                        .expect("row recorded")
                };
                let (r6, r8) = (pick(0.6), pick(0.8));
                t.row([
                    cp.to_string(),
                    r6.actual.to_string(),
                    fmt_pct(r6.rel_err(r6.nips)),
                    fmt_pct(r8.rel_err(r8.nips)),
                    fmt_pct(r6.rel_err(r6.ds)),
                    fmt_pct(r8.rel_err(r8.ds)),
                    fmt_pct(r6.rel_err(r6.ilc)),
                    fmt_pct(r8.rel_err(r8.ilc)),
                ]);
            }
            print!("{}", t.render());
        }
        // §6.2 memory comparison at end of stream.
        let last = rows
            .iter()
            .filter(|r| r.tuples == *checkpoints.last().expect("non-empty"))
            .max_by_key(|r| r.ilc_mem)
            .expect("rows recorded");
        println!(
            "\nmemory entries at {} tuples (worst condition set): \
             NIPS/CI {}, DS {}, ILC {}",
            last.tuples, last.nips_mem, last.ds_mem, last.ilc_mem
        );
        for r in &rows {
            let wname = match wl {
                Workload::A => "A",
                Workload::B => "B",
            };
            csv.row([
                wname.to_string(),
                r.sigma.to_string(),
                format!("{:.1}", r.psi),
                r.tuples.to_string(),
                r.actual.to_string(),
                format!("{:.4}", r.rel_err(r.nips)),
                format!("{:.4}", r.rel_err(r.ds)),
                format!("{:.4}", r.rel_err(r.ilc)),
                r.nips_mem.to_string(),
                r.ds_mem.to_string(),
                r.ilc_mem.to_string(),
            ]);
        }
    }
    if let Some(path) = args.get("csv") {
        csv.write_csv(std::path::Path::new(path))
            .expect("write csv");
        println!("\nwrote {path}");
    }
}
