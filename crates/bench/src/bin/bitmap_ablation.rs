//! Stochastic-averaging ablation (§4.7 / §6.1): estimation error as a
//! function of the number of bitmaps `m`, against the analytic
//! `≈ 0.78/√m` prediction. The paper picks `m = 64` for its ~10% target.

use imp_bench::table::{fmt_pct, Table};
use imp_bench::Args;
use imp_core::{EstimatorConfig, ImplicationConditions};
use imp_sketch::estimate::{pcsa_relative_error, relative_error, RunningStats};

fn main() {
    let usage = "bitmap-count ablation (§4.7)\n\
                 usage: bitmap_ablation [--card N] [--reps N] [--seed S]";
    let args = Args::parse(usage, &["card", "reps", "seed"], &[]);
    let card: u64 = args.get_or("card", 20_000);
    let reps: u32 = args.get_or("reps", 8);
    let seed: u64 = args.get_or("seed", 33);

    let cond = ImplicationConditions::strict_one_to_one(1);
    println!(
        "== implication-count error vs bitmap count \
         (‖A‖ = {card}, half violating, {reps} reps) =="
    );
    let mut t = Table::new(["m", "S error", "±dev", "analytic ≈0.78/√m"]);
    for m in [4usize, 16, 64, 256] {
        let mut st = RunningStats::new();
        for rep in 0..reps {
            let mut est = EstimatorConfig::new(cond)
                .bitmaps(m)
                .seed(seed + rep as u64 * 977)
                .build();
            for a in 0..card {
                est.update(&[a], &[1]);
                if a % 2 == 0 {
                    est.update(&[a], &[2]); // evens violate K = 1
                }
            }
            let s = est.estimate_now().implication_count;
            st.push(relative_error(card as f64 / 2.0, s));
        }
        t.row([
            m.to_string(),
            fmt_pct(st.mean()),
            fmt_pct(st.stddev()),
            fmt_pct(pcsa_relative_error(m)),
        ]);
    }
    print!("{}", t.render());
}
