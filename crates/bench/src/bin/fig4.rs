//! Figure 4: mean relative error vs implication count, `c = 1`, panels for
//! `‖A‖ ∈ {100, 1 000, 10 000, 100 000}` (largest panel behind `--cards`).

fn main() {
    imp_bench::figures::figure_main("fig4", 1, &[100, 1_000, 10_000]);
}
