//! `bench-telemetry` — machine-readable bench reports and the CI
//! regression gate (DESIGN.md §8.3).
//!
//! Three modes, one binary:
//!
//! ```text
//! # run the fixed workload, write BENCH_ingest.json, BENCH_estimate.json,
//! # BENCH_serve.json (queries under full-rate ingest),
//! # BENCH_serve_observability.json (same, with /metrics + /status
//! # scraping armed — CI holds its query rate within 5% of phase 3's)
//! # and BENCH_catalog.json (multi-query catalog vs naive per-query
//! # engines — the same-run 64-query gate demands >= 8x)
//! bench-telemetry --rows 200000 --out results
//!
//! # validate a report against the flat schema
//! bench-telemetry --check results/BENCH_ingest.json
//!
//! # the gate: fail (exit 1) on >15% ingest-throughput regression
//! bench-telemetry --compare-baseline results/BENCH_ingest.json \
//!                 --compare-candidate target/telemetry/BENCH_ingest.json \
//!                 --threshold 0.15
//!
//! # same gate, judging the serve report's query rate instead
//! bench-telemetry --compare-baseline results/BENCH_serve.json \
//!                 --compare-candidate target/telemetry/BENCH_serve.json \
//!                 --compare-key queries_per_sec_under_ingest
//! ```
//!
//! The workload is deterministic (Dataset One-style loyal/disloyal key
//! mix, fixed seed), so two runs on one host differ only by machine
//! noise — which is what the gate's threshold absorbs.

use std::time::Instant;

use imp_bench::telemetry::{
    compare_directed, git_sha, peak_rss_kb, GateDirection, LatencyHistogram, Report, Value,
    SCHEMA_VERSION,
};
use imp_bench::Args;
use imp_core::wire::{FrameKind, WireSnapshot};
use imp_core::{
    lint_prometheus, EstimatorConfig, ImplicationConditions, ImplicationQuery, MetricsRegistry,
    NodeRegistry, QueryCatalog, QueryEngine, TraceHandle,
};
use imp_stream::schema::{AttrSet, Schema};
use imp_stream::tuple::Tuple;

const USAGE: &str = "bench-telemetry — machine-readable bench reports + regression gate

usage: bench-telemetry [--rows N] [--seed N] [--out DIR]
       bench-telemetry --check FILE
       bench-telemetry --compare-baseline FILE --compare-candidate FILE [--threshold F]

  --rows N               workload rows (default 200000)
  --seed N               workload + estimator seed (default 42)
  --out DIR              where BENCH_*.json land (default results)
  --check FILE           schema-validate one report, exit 1 on violation
  --compare-baseline F   committed baseline report for the gate
  --compare-candidate F  freshly produced report to judge
  --compare-key KEY      judged rate key (default throughput_rows_per_sec;
                         the serve report gates on queries_per_sec_under_ingest)
  --compare-direction D  'higher' (rates, default) or 'lower' (costs like
                         snapshot_bytes_per_bitmap: growth fails the gate)
  --threshold F          max tolerated fractional change (default 0.15)";

fn read_report(path: &str) -> Report {
    let raw = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    Report::from_json(&raw).unwrap_or_else(|e| {
        eprintln!("{path}: parse error: {e}");
        std::process::exit(1);
    })
}

/// The deterministic pair stream: 3/4 loyal keys (single partner), 1/4
/// promiscuous — the same shape the Criterion benches use, so telemetry
/// throughput tracks the numbers developers see locally.
fn workload(rows: u64, seed: u64) -> Vec<([u64; 1], [u64; 1])> {
    (0..rows)
        .map(|i| {
            let a = imp_sketch::hash::mix64(i ^ seed) % (rows / 4).max(1);
            let b = if a.is_multiple_of(4) { i % 64 } else { a % 64 };
            ([a], [b])
        })
        .collect()
}

/// Catalog-phase schema width: a warehouse-shaped wide row (TPC-DS
/// `store_sales ⋈ date_dim` is 51 columns; fact tables alone run
/// 23–34) — wide enough that per-attribute hashing is real per-tuple
/// work worth sharing across queries.
const CATALOG_ARITY: usize = 48;

/// The catalog workload: a ~512-key driver column plus 47 columns
/// derived from it (with a 1-in-16 disloyal break per column). Near-FDs
/// hold from the driver into every derived column, while *candidate*
/// FDs among the low-cardinality derived columns are false — the shape
/// an approximate-FD sweep spends its time on.
fn catalog_workload(rows: u64, seed: u64) -> Vec<Tuple> {
    let mut vals = [0u64; CATALOG_ARITY];
    (0..rows)
        .map(|i| {
            let a = imp_sketch::hash::mix64(i ^ seed) % 512;
            vals[0] = a;
            for (j, v) in vals.iter_mut().enumerate().skip(1) {
                let j = j as u64;
                *v = if imp_sketch::hash::mix64(a ^ j).is_multiple_of(16) {
                    i % 8
                } else {
                    imp_sketch::hash::mix64(a ^ (j << 8)) % 64
                };
            }
            Tuple::new(vals.as_slice())
        })
        .collect()
}

/// `n` candidate-FD sweep entries cycling over Table 2 kinds — strict
/// 1:1, at-most-k with a compound rhs, and more-than-k — across the
/// derived columns. Like a TANE-style lattice sweep, nearly every
/// candidate here is false and gets refuted: the estimator commits the
/// refuted cells early, so the steady-state marginal cost per query is
/// hash *combination* plus a committed-cell check — which is exactly
/// the claim the 8× gate holds the catalog to. (Loyal, never-refuted
/// queries stay on the tracked-arena path; phases 1–3 price that.)
fn catalog_queries(n: usize) -> Vec<ImplicationQuery> {
    let derived = CATALOG_ARITY as u64 - 1;
    (0..n as u64)
        .map(|i| {
            let a1 = 1 + i % derived;
            let a2 = 1 + (i + 7) % derived;
            let b = 1 + (i + 17) % derived;
            let lhs = AttrSet::from_bits(1 << a1);
            let rhs = AttrSet::from_bits(1 << b);
            let wide_rhs = AttrSet::from_bits((1 << a2) | (1 << b));
            match i % 3 {
                0 => ImplicationQuery::one_to_one(lhs, rhs, 2),
                1 => ImplicationQuery::at_most(lhs, wide_rhs, 2, 2),
                _ => ImplicationQuery::more_than(lhs, rhs, 2, 2),
            }
        })
        .collect()
}

/// Common context keys shared by both phase reports.
fn base_report(phase: &str, rows: u64, seed: u64) -> Report {
    let mut r = Report::new();
    r.set("schema_version", Value::U64(SCHEMA_VERSION));
    r.set("phase", Value::Str(phase.to_owned()));
    r.set("rows", Value::U64(rows));
    r.set("seed", Value::U64(seed));
    r.set("git_sha", Value::Str(git_sha()));
    r.set("feature_metrics", Value::Bool(MetricsRegistry::enabled()));
    r.set("feature_trace", Value::Bool(TraceHandle::enabled()));
    r
}

fn finish_report(mut r: Report, elapsed_secs: f64, ops: u64, hist: &LatencyHistogram) -> Report {
    r.set("elapsed_secs", Value::F64(elapsed_secs));
    r.set(
        "throughput_rows_per_sec",
        Value::F64(ops as f64 / elapsed_secs.max(1e-9)),
    );
    r.set("latency_p50_nanos", Value::U64(hist.quantile(0.50)));
    r.set("latency_p99_nanos", Value::U64(hist.quantile(0.99)));
    r.set("peak_rss_kb", Value::U64(peak_rss_kb()));
    r
}

fn write_report(dir: &str, name: &str, report: &Report) {
    std::fs::create_dir_all(dir).unwrap_or_else(|e| {
        eprintln!("{dir}: {e}");
        std::process::exit(1);
    });
    let path = format!("{dir}/{name}");
    std::fs::write(&path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        std::process::exit(1);
    });
    eprintln!("telemetry: wrote {path}");
}

fn main() {
    let args = Args::parse(
        USAGE,
        &[
            "rows",
            "seed",
            "out",
            "check",
            "compare-baseline",
            "compare-candidate",
            "compare-key",
            "compare-direction",
            "threshold",
        ],
        &[],
    );

    if let Some(path) = args.get("check") {
        let report = read_report(path);
        match report.schema_check() {
            Ok(()) => {
                println!("{path}: schema ok");
                return;
            }
            Err(e) => {
                eprintln!("{path}: schema violation: {e}");
                std::process::exit(1);
            }
        }
    }

    if let (Some(base), Some(cand)) = (args.get("compare-baseline"), args.get("compare-candidate"))
    {
        let threshold = args.get_or("threshold", 0.15f64);
        let key = args.get("compare-key").unwrap_or("throughput_rows_per_sec");
        let direction = match args.get("compare-direction").unwrap_or("higher") {
            "higher" => GateDirection::HigherIsBetter,
            "lower" => GateDirection::LowerIsBetter,
            other => {
                eprintln!("--compare-direction must be 'higher' or 'lower', got {other:?}");
                std::process::exit(2);
            }
        };
        match compare_directed(
            &read_report(base),
            &read_report(cand),
            key,
            threshold,
            direction,
        ) {
            Ok(verdict) => {
                println!("gate ok: {verdict}");
                return;
            }
            Err(verdict) => {
                eprintln!("gate FAILED: {verdict}");
                std::process::exit(1);
            }
        }
    }
    if args.get("compare-baseline").is_some() || args.get("compare-candidate").is_some() {
        eprintln!("the gate needs both --compare-baseline and --compare-candidate\n\n{USAGE}");
        std::process::exit(2);
    }

    let rows = args.get_or("rows", 200_000u64);
    let seed = args.get_or("seed", 42u64);
    let out = args.get("out").unwrap_or("results").to_owned();
    let cond = ImplicationConditions::one_to_c(2, 0.8, 2);
    let data = workload(rows, seed);

    // Phase 1 — ingest: time every update into the log2 histogram.
    let mut est = EstimatorConfig::new(cond).seed(seed).build();
    let mut hist = LatencyHistogram::new();
    let start = Instant::now();
    for (a, b) in &data {
        let t = Instant::now();
        est.update(a, b);
        hist.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Arena-table bytes per tracked itemset: open-addressed slots carry
    // load-factor headroom, so this sits above the raw slot size.
    let bytes_per_itemset = est.tracked_bytes() as f64 / est.entries().max(1) as f64;
    // Wire cost of shipping the loaded state: one VERSION 3 full frame
    // (header + canonical bitmap blobs) divided by the bitmap count —
    // what one edge→aggregator resync pays per unit of sketch state.
    let snapshot_bytes_per_bitmap = WireSnapshot::capture(&est, 1).full_frame(0).len() as f64
        / est.bitmap_count().max(1) as f64;
    let line_rate = rows as f64 / elapsed.max(1e-9);

    // Phase 1b — the batch spine (ISSUE 10): the same stream through the
    // columnar batch path — hash one chunk, apply it with one grouped
    // estimator update — still single-threaded. The per-update loop
    // above prices a row at timer + hash + an isolated arena probe; the
    // batch path amortizes the timer away and sorts each chunk by bitmap
    // so consecutive probes share cache lines (DESIGN.md §8.9). Best of
    // `INGEST_TRIALS` cold runs, for the same reason phase 5 takes the
    // best trial: the gate below compares two rates and must not let one
    // scheduling hiccup swing the ratio.
    const INGEST_TRIALS: usize = 5;
    const INGEST_CHUNK: usize = 2048;
    let mut batch_best = f64::INFINITY;
    for _ in 0..INGEST_TRIALS {
        let mut est = EstimatorConfig::new(cond).seed(seed).build();
        let mut hashed = Vec::with_capacity(INGEST_CHUNK);
        let start = Instant::now();
        for chunk in data.chunks(INGEST_CHUNK) {
            hashed.clear();
            hashed.extend(chunk.iter().map(|(a, b)| est.hash_pair(a, b)));
            est.update_hashed_batch(&hashed);
        }
        batch_best = batch_best.min(start.elapsed().as_secs_f64());
        std::hint::black_box(est.entries());
    }
    let batch_rate = rows as f64 / batch_best.max(1e-9);
    let batch_speedup = batch_rate / line_rate.max(1e-9);

    let mut ingest = finish_report(base_report("ingest", rows, seed), elapsed, rows, &hist);
    ingest.set("bytes_per_tracked_itemset", Value::F64(bytes_per_itemset));
    ingest.set(
        "snapshot_bytes_per_bitmap",
        Value::F64(snapshot_bytes_per_bitmap),
    );
    ingest.set("batch_chunk", Value::U64(INGEST_CHUNK as u64));
    ingest.set("batch_rows_per_sec", Value::F64(batch_rate));
    ingest.set("batch_speedup_vs_row_rate", Value::F64(batch_speedup));
    write_report(&out, "BENCH_ingest.json", &ingest);

    // The same-run gate (ISSUE 10): the batch spine must carry the same
    // stream at ≥ 1.5× the per-row line rate — the committed
    // BENCH_ingest.json baseline key — or batching has stopped paying
    // for its buffering.
    if batch_speedup < 1.5 {
        eprintln!(
            "ingest gate FAILED: batch spine ran at only {batch_speedup:.2}x the per-row line \
             rate (needs >= 1.5x; batch {batch_rate:.0} rows/s vs per-row {line_rate:.0} rows/s)"
        );
        std::process::exit(1);
    }
    eprintln!(
        "telemetry: batch ingest {batch_speedup:.2}x the per-row line rate \
         ({batch_rate:.0} vs {line_rate:.0} rows/s)"
    );

    // Phase 2 — estimate: repeated full queries against the loaded state.
    // One query sweeps every bitmap, so a few hundred repetitions give
    // stable quantiles without rivaling the ingest phase's runtime.
    let reps = 200u64;
    let mut hist = LatencyHistogram::new();
    let start = Instant::now();
    let mut sink = 0.0f64;
    for _ in 0..reps {
        let t = Instant::now();
        let e = est.estimate_now();
        hist.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        sink += e.implication_count;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let mut estimate = finish_report(base_report("estimate", rows, seed), elapsed, reps, &hist);
    estimate.set("bytes_per_tracked_itemset", Value::F64(bytes_per_itemset));
    estimate.set(
        "snapshot_bytes_per_bitmap",
        Value::F64(snapshot_bytes_per_bitmap),
    );
    estimate.set("queries", Value::U64(reps));
    estimate.set("implication_count", Value::F64(sink / reps as f64));
    write_report(&out, "BENCH_estimate.json", &estimate);

    // Phase 3 — serve: sustained wait-free queries while the writer
    // ingests at full rate. The writer re-ingests the workload on its
    // own thread, publishing a view every `publish_every` rows; query
    // threads hammer cloned `EstimateReader`s the whole time. The
    // headline rate is `queries_per_sec_under_ingest` (the CI gate's
    // `--compare-key` for this report); the ingest throughput under
    // concurrent readers lands in the standard key.
    let publish_every = 4096u64;
    let query_threads = 2usize;
    let mut est = EstimatorConfig::new(cond).seed(seed).build();
    let reader = est.reader();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let (elapsed, total_queries, query_hist) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..query_threads)
            .map(|_| {
                let reader = reader.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut hist = LatencyHistogram::new();
                    let mut queries = 0u64;
                    let mut sink = 0.0f64;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let t = Instant::now();
                        sink += reader.estimate().f0_sup;
                        hist.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        queries += 1;
                    }
                    std::hint::black_box(sink);
                    (queries, hist)
                })
            })
            .collect();

        let start = Instant::now();
        for (i, (a, b)) in data.iter().enumerate() {
            est.update(a, b);
            if ((i + 1) as u64).is_multiple_of(publish_every) {
                est.publish();
            }
        }
        est.publish();
        let elapsed = start.elapsed().as_secs_f64();
        stop.store(true, std::sync::atomic::Ordering::Release);

        let mut hist = LatencyHistogram::new();
        let mut total = 0u64;
        for worker in workers {
            let (queries, h) = worker.join().expect("query thread");
            total += queries;
            hist.merge(&h);
        }
        (elapsed, total, hist)
    });
    let mut serve = finish_report(base_report("serve", rows, seed), elapsed, rows, &query_hist);
    serve.set("bytes_per_tracked_itemset", Value::F64(bytes_per_itemset));
    serve.set(
        "snapshot_bytes_per_bitmap",
        Value::F64(snapshot_bytes_per_bitmap),
    );
    serve.set("publish_every", Value::U64(publish_every));
    serve.set("query_threads", Value::U64(query_threads as u64));
    serve.set("queries", Value::U64(total_queries));
    serve.set(
        "queries_per_sec_under_ingest",
        Value::F64(total_queries as f64 / elapsed.max(1e-9)),
    );
    write_report(&out, "BENCH_serve.json", &serve);

    // Phase 4 — serve_observability: phase 3's exact workload with the
    // fleet-observability surface armed — a sized trace ring on the
    // estimator and a scraper thread rendering the Prometheus
    // exposition plus a 3-node registry's `/status` JSON every few
    // milliseconds, the way an aggregator serves monitoring while
    // ingesting. CI gates this report's `queries_per_sec_under_ingest`
    // against phase 3's at 5%: observability must stay out of the wait-
    // free read path's way.
    let scrape_interval = std::time::Duration::from_millis(5);
    let mut est = EstimatorConfig::new(cond).seed(seed).build();
    est.set_trace(TraceHandle::with_capacity(16_384));
    let metrics = est.metrics().clone();
    let registry = NodeRegistry::new(10_000);
    for node in 0..3u64 {
        registry.record_connect(node, 0);
        registry.record_frame(node, FrameKind::Full, 4_096, 1, rows / 4, 1);
    }
    let reader = est.reader();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let phase_start = Instant::now();
    let (elapsed, total_queries, query_hist, scrapes, scrape_hist) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..query_threads)
            .map(|_| {
                let reader = reader.clone();
                let stop = &stop;
                scope.spawn(move || {
                    let mut hist = LatencyHistogram::new();
                    let mut queries = 0u64;
                    let mut sink = 0.0f64;
                    while !stop.load(std::sync::atomic::Ordering::Acquire) {
                        let t = Instant::now();
                        sink += reader.estimate().f0_sup;
                        hist.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                        queries += 1;
                    }
                    std::hint::black_box(sink);
                    (queries, hist)
                })
            })
            .collect();
        let scraper = {
            let (metrics, registry, stop) = (&metrics, &registry, &stop);
            scope.spawn(move || {
                let mut hist = LatencyHistogram::new();
                let mut scrapes = 0u64;
                let mut sink = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Acquire) {
                    let now_ms = phase_start.elapsed().as_millis() as u64;
                    let t = Instant::now();
                    let mut body = metrics.prometheus("implicate");
                    registry.prometheus_into("implicate", now_ms, &mut body);
                    let status = registry.status_json(now_ms);
                    hist.record(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
                    scrapes += 1;
                    sink += body.len() + status.len();
                    std::thread::sleep(scrape_interval);
                }
                std::hint::black_box(sink);
                (scrapes, hist)
            })
        };

        let start = Instant::now();
        for (i, (a, b)) in data.iter().enumerate() {
            est.update(a, b);
            if ((i + 1) as u64).is_multiple_of(publish_every) {
                est.publish();
            }
        }
        est.publish();
        let elapsed = start.elapsed().as_secs_f64();
        stop.store(true, std::sync::atomic::Ordering::Release);

        let mut hist = LatencyHistogram::new();
        let mut total = 0u64;
        for worker in workers {
            let (queries, h) = worker.join().expect("query thread");
            total += queries;
            hist.merge(&h);
        }
        let (scrapes, scrape_hist) = scraper.join().expect("scrape thread");
        (elapsed, total, hist, scrapes, scrape_hist)
    });
    // One last render outside the timed window, run through the in-tree
    // linter: the scraped exposition must be well-formed, not just fast.
    if MetricsRegistry::enabled() {
        let mut body = metrics.prometheus("implicate");
        registry.prometheus_into(
            "implicate",
            phase_start.elapsed().as_millis() as u64,
            &mut body,
        );
        if let Err(e) = lint_prometheus(&body) {
            eprintln!("scraped exposition failed the linter: {e}");
            std::process::exit(1);
        }
    }
    let mut obs = finish_report(
        base_report("serve_observability", rows, seed),
        elapsed,
        rows,
        &query_hist,
    );
    obs.set("bytes_per_tracked_itemset", Value::F64(bytes_per_itemset));
    obs.set(
        "snapshot_bytes_per_bitmap",
        Value::F64(snapshot_bytes_per_bitmap),
    );
    obs.set("publish_every", Value::U64(publish_every));
    obs.set("query_threads", Value::U64(query_threads as u64));
    obs.set("queries", Value::U64(total_queries));
    obs.set(
        "queries_per_sec_under_ingest",
        Value::F64(total_queries as f64 / elapsed.max(1e-9)),
    );
    obs.set("scrapes", Value::U64(scrapes));
    obs.set("scrape_p50_nanos", Value::U64(scrape_hist.quantile(0.50)));
    obs.set("scrape_p99_nanos", Value::U64(scrape_hist.quantile(0.99)));
    write_report(&out, "BENCH_serve_observability.json", &obs);

    // Phase 5 — catalog: many queries, one pass (DESIGN.md §8.8). The
    // same wide-row stream is ingested through a `QueryCatalog` holding
    // Q ∈ {1, 8, 64} registered queries, then through the pre-refactor
    // shape — 64 independent `QueryEngine`s each re-hashing every tuple
    // — in the same run, so `catalog_vs_naive_speedup_64q` compares two
    // numbers with identical machine noise. The report's headline
    // throughput is the 64-query catalog's; the gate below holds the
    // shared-hashing claim to ≥ 8× and fails the whole telemetry run
    // if the marginal query ever gets recomputation-priced again.
    let catalog_rows = (rows / 4).max(4_096);
    let tuples = catalog_workload(catalog_rows, seed);
    let cat_schema = Schema::new((0..CATALOG_ARITY).map(|i| (format!("c{i}"), 0)));
    let template = EstimatorConfig::new(ImplicationConditions::builder().build())
        .bitmaps(16)
        .seed(seed);
    let queries = catalog_queries(64);
    let batch = 1024usize;
    // Every rate below is the best of `TRIALS` independent cold runs:
    // the gate compares two throughputs, so a scheduling hiccup on
    // either side would otherwise swing the ratio by the noise of the
    // slowest trial.
    const TRIALS: usize = 5;
    let levels = [1usize, 8, 64];
    let mut rates = [0.0f64; 3];
    let mut elapsed_64q = 0.0f64;
    // Per-row nanos (batch time / batch width), recorded on the 64-query
    // runs only: the report's latency quantiles price the full catalog.
    let mut hist = LatencyHistogram::new();
    for (slot, &q) in levels.iter().enumerate() {
        let mut best = f64::INFINITY;
        for _ in 0..TRIALS {
            let mut catalog = QueryCatalog::new(&cat_schema, template);
            let ids: Vec<_> = queries[..q]
                .iter()
                .enumerate()
                .map(|(i, query)| catalog.register(format!("q{i}"), query.clone()))
                .collect();
            let start = Instant::now();
            for chunk in tuples.chunks(batch) {
                let t = Instant::now();
                catalog.process_batch(chunk);
                if q == 64 {
                    let nanos = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    hist.record(nanos / chunk.len() as u64);
                }
            }
            best = best.min(start.elapsed().as_secs_f64());
            let answered: f64 = ids.iter().filter_map(|&id| catalog.answer(id)).sum();
            std::hint::black_box(answered);
        }
        rates[slot] = catalog_rows as f64 / best.max(1e-9);
        if q == 64 {
            elapsed_64q = best;
        }
    }

    // The naive baseline: the stream effectively run once per query
    // (tuple-major over independent engines), every engine re-hashing
    // the full wide row — what `examples/query_catalog.rs` did before
    // the refactor.
    let mut naive_best = f64::INFINITY;
    for _ in 0..TRIALS {
        let mut engines: Vec<QueryEngine> = queries
            .iter()
            .map(|q| QueryEngine::new(&cat_schema, q.clone(), template))
            .collect();
        let start = Instant::now();
        for t in &tuples {
            for engine in &mut engines {
                engine.process(t);
            }
        }
        naive_best = naive_best.min(start.elapsed().as_secs_f64());
        let sink: f64 = engines.iter().map(|e| e.answer()).sum();
        std::hint::black_box(sink);
    }
    let naive_64q = catalog_rows as f64 / naive_best.max(1e-9);

    // Marginal throughput of one additional query: invert the per-row
    // time added per query between Q=1 and Q=64. Large is good — it
    // means an extra question costs a hash *combination*, not a fresh
    // per-attribute hashing pass.
    let marginal = 63.0 / (1.0 / rates[2] - 1.0 / rates[0]).max(1e-12);
    let speedup = rates[2] / naive_64q;
    let mut catalog_report = finish_report(
        base_report("catalog", catalog_rows, seed),
        elapsed_64q,
        catalog_rows,
        &hist,
    );
    catalog_report.set("bytes_per_tracked_itemset", Value::F64(bytes_per_itemset));
    catalog_report.set(
        "snapshot_bytes_per_bitmap",
        Value::F64(snapshot_bytes_per_bitmap),
    );
    catalog_report.set("catalog_arity", Value::U64(CATALOG_ARITY as u64));
    catalog_report.set("batch", Value::U64(batch as u64));
    for (slot, &q) in levels.iter().enumerate() {
        catalog_report.set(&format!("rows_per_sec_q{q}"), Value::F64(rates[slot]));
    }
    catalog_report.set("marginal_rows_per_sec_per_query", Value::F64(marginal));
    catalog_report.set("naive_rows_per_sec_64q", Value::F64(naive_64q));
    catalog_report.set("catalog_vs_naive_speedup_64q", Value::F64(speedup));
    write_report(&out, "BENCH_catalog.json", &catalog_report);

    // The same-run gate (ISSUE 9): a 64-query catalog must beat 64
    // independent engines by ≥ 8×, or the shared-hashing refactor has
    // regressed into per-query recomputation.
    if speedup < 8.0 {
        eprintln!(
            "catalog gate FAILED: 64-query catalog ran at only {speedup:.2}x the naive \
             per-query-engine baseline (needs >= 8x; catalog {:.0} rows/s vs naive {:.0} rows/s)",
            rates[2], naive_64q
        );
        std::process::exit(1);
    }
    eprintln!(
        "telemetry: catalog 64q speedup {speedup:.2}x over naive (marginal {marginal:.0} rows/s/query)"
    );
}
