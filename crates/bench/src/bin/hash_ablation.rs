//! Hash-family ablation (§4.7.1): distinct-count accuracy of the PCSA
//! substrate under the four implemented families — the seeded avalanche
//! mixer (NIPS's default), pairwise- and 4-wise-independent polynomials
//! over `GF(2^61 − 1)`, and random GF(2)-linear maps (the "linear hash
//! functions" of the (ε, δ) analyses the paper cites).

use rand::rngs::StdRng;
use rand::SeedableRng;

use imp_bench::table::{fmt_pct, Table};
use imp_bench::Args;
use imp_sketch::estimate::{relative_error, RunningStats};
use imp_sketch::hash::{BoxedHasher, HashFamily};
use imp_sketch::pcsa::Pcsa;

fn main() {
    let usage = "hash-family ablation (§4.7.1)\n\
                 usage: hash_ablation [--n N] [--reps N] [--seed S]";
    let args = Args::parse(usage, &["n", "reps", "seed"], &[]);
    let n: u64 = args.get_or("n", 100_000);
    let reps: u32 = args.get_or("reps", 10);
    let seed: u64 = args.get_or("seed", 5);

    println!("== F0 estimation error by hash family (n = {n}, m = 64, {reps} reps) ==");
    let mut t = Table::new(["family", "mean error", "±dev"]);
    for (name, family) in [
        ("mix (default)", HashFamily::Mix),
        ("pairwise poly", HashFamily::Pairwise),
        ("4-wise poly", HashFamily::FourWise),
        ("GF(2) linear", HashFamily::Gf2Linear),
    ] {
        let mut st = RunningStats::new();
        for rep in 0..reps {
            let mut rng = StdRng::seed_from_u64(seed + rep as u64 * 7919);
            let hasher = BoxedHasher::from_family(family, &mut rng);
            let mut pcsa = Pcsa::with_hasher(64, hasher);
            for x in 0..n {
                // Sequential keys: the adversarial input for weak hashes.
                pcsa.insert_u64(x);
            }
            st.push(relative_error(n as f64, pcsa.estimate()));
        }
        t.row([name.to_string(), fmt_pct(st.mean()), fmt_pct(st.stddev())]);
    }
    print!("{}", t.render());
    println!("\nall families should sit near the analytic ≈9.8% for m = 64.");
}
