//! Tables 3 & 4: the OLAP dataset's dimension cardinalities and the actual
//! implication counts of the two workloads as the stream evolves
//! (σ = 5, ψ1 = 60%, K = 2).

use imp_bench::olap_experiment::{run_workload, scaled_checkpoints, Workload};
use imp_bench::table::Table;
use imp_bench::Args;
use imp_datagen::olap::{OlapSpec, CARDINALITIES};

fn main() {
    let usage = "reproduce Tables 3 and 4 (implication counts vs stream length)\n\
                 usage: table4 [--tuples N] [--seed S] [--csv out.csv] [--full]\n\
                 --full runs the paper's 5.38M-tuple stream (default 1.35M)";
    let args = Args::parse(usage, &["tuples", "seed", "csv"], &["full"]);
    let total: u64 = if args.flag("full") {
        5_381_203
    } else {
        args.get_or("tuples", 1_345_000)
    };
    let seed: u64 = args.get_or("seed", 4);

    println!("== Table 3: dimension cardinalities ==");
    let mut t3 = Table::new(["dimension", "cardinality"]);
    for (name, card) in CARDINALITIES {
        t3.row([name.to_string(), card.to_string()]);
    }
    print!("{}", t3.render());

    let checkpoints = scaled_checkpoints(total);
    println!("\n== Table 4: implication counts w.r.t. tuples (σ = 5, ψ1 = 0.60) ==");
    let a = run_workload(
        Workload::A,
        OlapSpec::default(),
        total,
        &checkpoints,
        &[5],
        &[0.6],
        seed,
    );
    let b = run_workload(
        Workload::B,
        OlapSpec::default(),
        total,
        &checkpoints,
        &[5],
        &[0.6],
        seed,
    );
    let mut t4 = Table::new(["Tuples", "A: {A,E,G} → B", "B: E → B"]);
    for (ra, rb) in a.iter().zip(&b) {
        assert_eq!(ra.tuples, rb.tuples);
        t4.row([
            ra.tuples.to_string(),
            ra.actual.to_string(),
            rb.actual.to_string(),
        ]);
    }
    print!("{}", t4.render());
    if let Some(path) = args.get("csv") {
        t4.write_csv(std::path::Path::new(path)).expect("write csv");
        println!("\nwrote {path}");
    }
}
