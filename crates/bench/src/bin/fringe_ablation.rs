//! Lemma 2 / §4.3.3 ablation: estimation error as a function of the fringe
//! size `F` and the non-implication ratio `q = S̄ / F0(A)`.
//!
//! The paper's claims, checked empirically here:
//! * a fringe of `F` cells estimates accurately whenever `q ≥ 2^-F`
//!   (`F = 4` → 6.25%);
//! * smaller ratios are clamped to the `≈ 2^-F · F0` floor;
//! * the unbounded fringe is accurate for every `q` (at `O(F0)` memory).

use imp_bench::table::{fmt_pct, Table};
use imp_bench::Args;
use imp_core::{EstimatorConfig, Fringe, ImplicationConditions};
use imp_sketch::estimate::{relative_error, RunningStats};

/// Streams `‖A‖` itemsets of which a `q` fraction violate (`K = 1`).
fn run(q: f64, fringe: Option<u32>, cardinality: u64, seed: u64) -> (f64, f64) {
    let cond = ImplicationConditions::strict_one_to_one(1);
    let mut est = match fringe {
        Some(f) => EstimatorConfig::new(cond)
            .fringe(Fringe::Bounded(f))
            .seed(seed)
            .build(),
        None => EstimatorConfig::new(cond)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build(),
    };
    let violators = (cardinality as f64 * q).round() as u64;
    for a in 0..cardinality {
        // Interleave deterministically: the first `violators` by index
        // violate. Hash-based interleave keeps order effects out.
        let violates = imp_sketch::hash::mix64(a ^ seed) % 10_000 < (q * 10_000.0) as u64;
        est.update(&[a], &[1]);
        if violates {
            est.update(&[a], &[2]);
        } else {
            est.update(&[a], &[1]);
        }
    }
    let _ = violators;
    let e = est.estimate_now();
    (e.non_implication_count, e.implication_count)
}

fn main() {
    let usage = "fringe-size ablation (Lemma 2 / §4.3.3)\n\
                 usage: fringe_ablation [--card N] [--reps N] [--seed S]";
    let args = Args::parse(usage, &["card", "reps", "seed"], &[]);
    let card: u64 = args.get_or("card", 20_000);
    let reps: u32 = args.get_or("reps", 5);
    let seed: u64 = args.get_or("seed", 21);

    let qs = [0.5, 0.25, 0.125, 0.0625, 0.03125, 0.015625, 0.004];
    let fringes: Vec<Option<u32>> = vec![Some(1), Some(2), Some(4), Some(6), Some(8), None];
    println!("== S̄ relative error vs fringe size (‖A‖ = {card}, {reps} reps) ==");
    println!("rows marked '*' are below the F-cell floor q < 2^-F (Lemma 2)\n");
    let mut t = Table::new(["q = S̄/F0", "F=1", "F=2", "F=4", "F=6", "F=8", "unbounded"]);
    for &q in &qs {
        let mut cells = vec![format!("{:.2}%", q * 100.0)];
        for &f in &fringes {
            let mut st = RunningStats::new();
            for rep in 0..reps {
                let (sbar, _) = run(q, f, card, seed + rep as u64 * 101);
                st.push(relative_error(q * card as f64, sbar));
            }
            let below_floor = f.is_some_and(|f| q < (-(f as f64)).exp2());
            let marker = if below_floor { "*" } else { "" };
            cells.push(format!("{}{}", fmt_pct(st.mean()), marker));
        }
        t.row(cells);
    }
    print!("{}", t.render());
    println!(
        "\nexpected: within each row, errors stay near the estimator noise \
         (≈10%) for F ≥ ⌈−log2 q⌉ and blow up left of that boundary."
    );
}
