//! F0-substrate ablation: the paper-era estimators (FM single bitmap,
//! PCSA, linear counting) against modern HyperLogLog, at matched memory.
//!
//! The reproduction note observes that per-key distinct counting via "HLL
//! variants" is the common modern approach; this binary quantifies what
//! NIPS's PCSA substrate gives up against it (and when linear counting is
//! still the right tool).

use imp_bench::table::{fmt_pct, Table};
use imp_bench::Args;
use imp_sketch::estimate::{relative_error, RunningStats};
use imp_sketch::{FmSketch, HyperLogLog, LinearCounter, Pcsa};

fn main() {
    let usage = "F0-substrate ablation (PCSA vs HyperLogLog vs linear counting)\n\
                 usage: f0_ablation [--reps N] [--seed S]";
    let args = Args::parse(usage, &["reps", "seed"], &[]);
    let reps: u32 = args.get_or("reps", 8);
    let seed: u64 = args.get_or("seed", 17);

    println!("== F0 estimation error by substrate ({reps} reps) ==");
    println!("memory-matched: PCSA m=64 (512 B) vs HLL p=9 (512 B) vs LC 4096 bits\n");
    let mut t = Table::new([
        "n",
        "FM (1 bitmap)",
        "PCSA m=64",
        "HLL p=9",
        "LinearCounting 4k",
    ]);
    for n in [1_000u64, 10_000, 100_000, 1_000_000] {
        let mut stats = [
            RunningStats::new(),
            RunningStats::new(),
            RunningStats::new(),
            RunningStats::new(),
        ];
        for rep in 0..reps {
            let s = seed + rep as u64 * 1013;
            let mut fm = FmSketch::new(s);
            let mut pcsa = Pcsa::new(64, s);
            let mut hll = HyperLogLog::new(9, s);
            let mut lc = LinearCounter::new(4096, s);
            for x in 0..n {
                fm.insert_u64(x);
                pcsa.insert_u64(x);
                hll.insert_u64(x);
                lc.insert_u64(x);
            }
            stats[0].push(relative_error(n as f64, fm.estimate()));
            stats[1].push(relative_error(n as f64, pcsa.estimate()));
            stats[2].push(relative_error(n as f64, hll.estimate()));
            stats[3].push(relative_error(n as f64, lc.estimate()));
        }
        t.row([
            n.to_string(),
            fmt_pct(stats[0].mean()),
            fmt_pct(stats[1].mean()),
            fmt_pct(stats[2].mean()),
            fmt_pct(stats[3].mean()),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nexpected: HLL ≈ 4.6% and PCSA ≈ 9.8% analytically; linear counting\n\
         wins while unsaturated (n ≲ 3×bits) and degrades beyond."
    );
}
