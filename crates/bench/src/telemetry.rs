//! Machine-readable bench telemetry: flat JSON reports with a schema
//! check and a throughput-regression gate (DESIGN.md §8.3).
//!
//! The `bench-telemetry` binary runs a fixed ingest + estimate workload
//! and writes one report per phase (`BENCH_ingest.json`,
//! `BENCH_estimate.json`). Each report is a single flat JSON object —
//! no nesting, no arrays — so CI can diff it, `jq` can slice it, and the
//! hand-rolled parser below can read it back without a JSON dependency.
//!
//! Latency quantiles come from a log2 histogram: per-operation nanoseconds
//! are bucketed by `floor(log2(n))`, and a quantile resolves to the
//! geometric midpoint of its bucket. Resolution is therefore a factor of
//! two — exactly enough to catch real regressions, cheap enough to time
//! every operation.
//!
//! The regression gate ([`compare`]) is deliberately one-dimensional:
//! candidate ingest throughput must be within `threshold` (default 15%)
//! of the committed baseline. Latency and RSS ride along as context, not
//! gates — they vary too much across CI hosts to block merges on.

use std::fmt::Write as _;

/// Report schema version; bump when keys change meaning.
///
/// * v2 — added required `snapshot_bytes_per_bitmap` (VERSION 3 full
///   wire-frame bytes divided by the bitmap count; the distributed
///   shipping cost per unit of sketch state, gated lower-is-better).
pub const SCHEMA_VERSION: u64 = 2;

/// Required keys (and the value class the checker enforces) of every
/// telemetry report. Everything else is advisory context.
pub const REQUIRED_KEYS: &[(&str, ValueKind)] = &[
    ("schema_version", ValueKind::Num),
    ("phase", ValueKind::Str),
    ("rows", ValueKind::Num),
    ("elapsed_secs", ValueKind::Num),
    ("throughput_rows_per_sec", ValueKind::Num),
    ("latency_p50_nanos", ValueKind::Num),
    ("latency_p99_nanos", ValueKind::Num),
    ("peak_rss_kb", ValueKind::Num),
    ("bytes_per_tracked_itemset", ValueKind::Num),
    ("snapshot_bytes_per_bitmap", ValueKind::Num),
    ("git_sha", ValueKind::Str),
    ("feature_metrics", ValueKind::Bool),
    ("feature_trace", ValueKind::Bool),
];

/// The value classes a flat report can hold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueKind {
    /// Any JSON number (integers and floats alike).
    Num,
    /// A JSON string.
    Str,
    /// `true` / `false`.
    Bool,
}

/// One value in a flat telemetry report.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An unsigned integer, rendered without a decimal point.
    U64(u64),
    /// A float, rendered with enough precision to round-trip coarsely.
    F64(f64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The value as a number, when it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    fn kind(&self) -> ValueKind {
        match self {
            Value::U64(_) | Value::F64(_) => ValueKind::Num,
            Value::Str(_) => ValueKind::Str,
            Value::Bool(_) => ValueKind::Bool,
        }
    }
}

/// A flat, ordered telemetry report (insertion order is emission order).
#[derive(Debug, Clone, Default)]
pub struct Report {
    entries: Vec<(String, Value)>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `key` (replacing an earlier occurrence, keeping its slot).
    pub fn set(&mut self, key: &str, value: Value) {
        match self.entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => self.entries.push((key.to_owned(), value)),
        }
    }

    /// Reads `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Renders the report as one flat JSON object (trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{}\": ", escape(k));
            match v {
                Value::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                Value::F64(f) if f.is_finite() => {
                    let _ = write!(out, "{f}");
                }
                Value::F64(_) => out.push_str("null"),
                Value::Str(s) => {
                    let _ = write!(out, "\"{}\"", escape(s));
                }
                Value::Bool(b) => {
                    let _ = write!(out, "{b}");
                }
            }
        }
        out.push_str("\n}\n");
        out
    }

    /// Parses a flat JSON object produced by [`Report::to_json`] (or any
    /// flat object of numbers, strings and booleans). Nested objects and
    /// arrays are rejected — the schema is flat by design.
    pub fn from_json(raw: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: raw.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        p.expect(b'{')?;
        let mut report = Report::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            return Ok(report);
        }
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            report.set(&key, value);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        Ok(report)
    }

    /// Validates the report against [`REQUIRED_KEYS`] and the schema
    /// version. Returns every violation, not just the first.
    pub fn schema_check(&self) -> Result<(), String> {
        let mut problems = Vec::new();
        for &(key, kind) in REQUIRED_KEYS {
            match self.get(key) {
                None => problems.push(format!("missing key {key:?}")),
                Some(v) if v.kind() != kind => {
                    problems.push(format!("key {key:?} has wrong type (want {kind:?})"));
                }
                Some(_) => {}
            }
        }
        if let Some(v) = self.get("schema_version").and_then(Value::as_f64) {
            if v != SCHEMA_VERSION as f64 {
                problems.push(format!("schema_version {v} != supported {SCHEMA_VERSION}"));
            }
        }
        if problems.is_empty() {
            Ok(())
        } else {
            Err(problems.join("; "))
        }
    }
}

/// The regression gate: fails when the candidate's ingest throughput
/// dropped more than `threshold` (fractional, e.g. 0.15) below the
/// baseline's. Improvements always pass.
pub fn compare(baseline: &Report, candidate: &Report, threshold: f64) -> Result<String, String> {
    compare_on(baseline, candidate, "throughput_rows_per_sec", threshold)
}

/// Which way a gated metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateDirection {
    /// Rates: a drop beyond the threshold fails (throughput, query rate).
    HigherIsBetter,
    /// Costs: a rise beyond the threshold fails (wire bytes per bitmap).
    LowerIsBetter,
}

/// [`compare`] generalised over the judged key: any higher-is-better
/// numeric rate in both reports can gate (e.g.
/// `queries_per_sec_under_ingest` from the serve phase).
pub fn compare_on(
    baseline: &Report,
    candidate: &Report,
    key: &str,
    threshold: f64,
) -> Result<String, String> {
    compare_directed(
        baseline,
        candidate,
        key,
        threshold,
        GateDirection::HigherIsBetter,
    )
}

/// [`compare_on`] generalised over the regression direction, so cost
/// metrics (lower is better, e.g. `snapshot_bytes_per_bitmap`) can gate
/// with the same machinery as rates.
pub fn compare_directed(
    baseline: &Report,
    candidate: &Report,
    key: &str,
    threshold: f64,
    direction: GateDirection,
) -> Result<String, String> {
    let read = |r: &Report, who: &str| {
        r.get(key)
            .and_then(Value::as_f64)
            .filter(|v| *v > 0.0)
            .ok_or_else(|| format!("{who}: missing or non-positive {key}"))
    };
    let base = read(baseline, "baseline")?;
    let cand = read(candidate, "candidate")?;
    let change = (cand - base) / base;
    let (bad, sign) = match direction {
        GateDirection::HigherIsBetter => (change < -threshold, '-'),
        GateDirection::LowerIsBetter => (change > threshold, '+'),
    };
    let verdict = format!(
        "{key} {base:.0} -> {cand:.0} ({:+.1}%, threshold {sign}{:.1}%)",
        change * 100.0,
        threshold * 100.0
    );
    if bad {
        Err(verdict)
    } else {
        Ok(verdict)
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.next().ok_or("truncated \\u escape")?;
                            code = code * 16 + (d as char).to_digit(16).ok_or("bad \\u escape")?;
                        }
                        out.push(char::from_u32(code).ok_or("bad \\u codepoint")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) => out.push(b as char),
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::F64(f64::NAN)),
            Some(b'{' | b'[') => Err("nested values are not part of the flat schema".into()),
            Some(_) => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let raw =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                if let Ok(n) = raw.parse::<u64>() {
                    Ok(Value::U64(n))
                } else {
                    raw.parse::<f64>()
                        .map(Value::F64)
                        .map_err(|_| format!("bad number {raw:?}"))
                }
            }
            None => Err("truncated value".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal (expected {word})"))
        }
    }
}

/// A log2 latency histogram: 64 buckets, bucket `i` holding samples with
/// `floor(log2(nanos)) == i` (0-or-1 ns land in bucket 0). Recording is
/// one increment; quantiles resolve to the geometric midpoint of their
/// bucket, so reported values are exact to within a factor of √2.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; 64],
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; 64],
            count: 0,
        }
    }

    /// Records one duration in nanoseconds.
    #[inline]
    pub fn record(&mut self, nanos: u64) {
        let bucket = 63 - nanos.max(1).leading_zeros() as usize;
        self.buckets[bucket] += 1;
        self.count += 1;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one — the reduction step when
    /// per-thread histograms (e.g. one per query thread in the serve
    /// bench) combine into a single quantile source. Exact: buckets add.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// The quantile `q` in `[0, 1]` as representative nanoseconds (the
    /// geometric midpoint of the bucket holding that rank), or 0 when
    /// the histogram is empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Geometric midpoint of [2^i, 2^(i+1)): 2^i * √2.
                return ((1u64 << i) as f64 * std::f64::consts::SQRT_2) as u64;
            }
        }
        unreachable!("rank {rank} beyond recorded count {}", self.count)
    }
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`); 0
/// where procfs is unavailable.
pub fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse().ok())
        .unwrap_or(0)
}

/// The commit the binary was built from: `GITHUB_SHA` when CI exports
/// it, otherwise `git rev-parse HEAD`, otherwise `"unknown"`.
pub fn git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal_valid() -> Report {
        let mut r = Report::new();
        r.set("schema_version", Value::U64(SCHEMA_VERSION));
        r.set("phase", Value::Str("ingest".into()));
        r.set("rows", Value::U64(1000));
        r.set("elapsed_secs", Value::F64(0.5));
        r.set("throughput_rows_per_sec", Value::F64(2000.0));
        r.set("latency_p50_nanos", Value::U64(90));
        r.set("latency_p99_nanos", Value::U64(362));
        r.set("peak_rss_kb", Value::U64(4096));
        r.set("bytes_per_tracked_itemset", Value::F64(57.5));
        r.set("snapshot_bytes_per_bitmap", Value::F64(24.0));
        r.set("git_sha", Value::Str("abc123".into()));
        r.set("feature_metrics", Value::Bool(true));
        r.set("feature_trace", Value::Bool(true));
        r
    }

    #[test]
    fn report_round_trips_through_json() {
        let r = minimal_valid();
        let parsed = Report::from_json(&r.to_json()).unwrap();
        for (k, v) in &r.entries {
            match (v, parsed.get(k).unwrap()) {
                (Value::F64(a), b) => assert_eq!(Some(*a), b.as_f64(), "{k}"),
                (a, b) => assert_eq!(a, b, "{k}"),
            }
        }
        assert!(parsed.schema_check().is_ok());
    }

    #[test]
    fn schema_check_reports_every_violation() {
        let mut r = minimal_valid();
        r.set("git_sha", Value::U64(1)); // wrong type
        let mut missing = Report::from_json(&r.to_json()).unwrap();
        missing.entries.retain(|(k, _)| k != "rows");
        let err = missing.schema_check().unwrap_err();
        assert!(err.contains("missing key \"rows\""), "{err}");
        assert!(err.contains("\"git_sha\" has wrong type"), "{err}");
    }

    #[test]
    fn parser_rejects_nesting() {
        assert!(Report::from_json("{\"a\": {\"b\": 1}}").is_err());
        assert!(Report::from_json("{\"a\": [1]}").is_err());
    }

    #[test]
    fn gate_passes_within_threshold_and_fails_beyond() {
        let base = minimal_valid();
        let mut cand = minimal_valid();
        cand.set("throughput_rows_per_sec", Value::F64(1800.0)); // −10%
        assert!(compare(&base, &cand, 0.15).is_ok());
        cand.set("throughput_rows_per_sec", Value::F64(1600.0)); // −20%
        assert!(compare(&base, &cand, 0.15).is_err());
        cand.set("throughput_rows_per_sec", Value::F64(9999.0)); // faster
        assert!(compare(&base, &cand, 0.15).is_ok());
    }

    #[test]
    fn histogram_quantiles_land_in_the_right_bucket() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(100); // bucket 6: [64, 128)
        }
        h.record(10_000); // bucket 13: [8192, 16384)
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((64..128).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((64..128).contains(&p99), "p99 {p99} (99th sample is fast)");
        let p100 = h.quantile(1.0);
        assert!((8192..16384).contains(&p100), "max {p100}");
    }

    #[test]
    fn merged_histograms_report_union_quantiles() {
        let mut fast = LatencyHistogram::new();
        for _ in 0..90 {
            fast.record(100);
        }
        let mut slow = LatencyHistogram::new();
        for _ in 0..10 {
            slow.record(10_000);
        }
        fast.merge(&slow);
        assert_eq!(fast.count(), 100);
        let p50 = fast.quantile(0.50);
        assert!((64..128).contains(&p50), "p50 {p50}");
        let p95 = fast.quantile(0.95);
        assert!((8192..16384).contains(&p95), "p95 {p95}");
    }

    #[test]
    fn gate_generalises_over_the_judged_key() {
        let mut base = Report::new();
        base.set("queries_per_sec_under_ingest", Value::F64(1000.0));
        let mut cand = Report::new();
        cand.set("queries_per_sec_under_ingest", Value::F64(900.0)); // −10%
        assert!(compare_on(&base, &cand, "queries_per_sec_under_ingest", 0.15).is_ok());
        cand.set("queries_per_sec_under_ingest", Value::F64(800.0)); // −20%
        assert!(compare_on(&base, &cand, "queries_per_sec_under_ingest", 0.15).is_err());
        // The key must exist in both reports.
        assert!(compare_on(&base, &cand, "no_such_key", 0.15).is_err());
    }

    #[test]
    fn lower_is_better_gate_fails_on_cost_growth() {
        let key = "snapshot_bytes_per_bitmap";
        let base = minimal_valid();
        let mut cand = minimal_valid();
        cand.set(key, Value::F64(26.0)); // +8.3%: tolerated
        assert!(compare_directed(&base, &cand, key, 0.15, GateDirection::LowerIsBetter).is_ok());
        cand.set(key, Value::F64(30.0)); // +25%: a wire-size regression
        assert!(compare_directed(&base, &cand, key, 0.15, GateDirection::LowerIsBetter).is_err());
        cand.set(key, Value::F64(12.0)); // smaller frames always pass
        assert!(compare_directed(&base, &cand, key, 0.15, GateDirection::LowerIsBetter).is_ok());
    }

    #[test]
    fn rss_probe_reads_procfs_on_linux() {
        // On Linux this must be > 0 for a live process; elsewhere 0.
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(peak_rss_kb() > 0);
        }
    }
}
