//! The §6.2 machinery shared by the `table4` and `fig7` binaries: run the
//! OLAP-like stream once, track one exact counter plus the three
//! competitors (NIPS/CI, DS, ILC) per implication-condition setting, and
//! record everything at the Table 4 checkpoints.

use imp_baselines::{DistinctSampling, ExactCounter, Ilc, ImplicationCounter};
use imp_core::{EstimatorConfig, Fringe};
use imp_datagen::olap::{schema, OlapSpec, OlapStream};
use imp_stream::project::Projector;
use imp_stream::source::TupleSource;

use crate::params::{DS_SAMPLE_SIZE, ILC_EPSILON, NIPS_BITMAPS, NIPS_FRINGE};

/// The two §6.2 workloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Conditional/compound: itemsets of `{A, E, G}` implying `B`
    /// ("quite large compound cardinality").
    A,
    /// Unconditional: `E → B` ("very moderate cardinalities").
    B,
}

impl Workload {
    /// The `A`-side attributes.
    pub fn lhs(self) -> &'static [&'static str] {
        match self {
            Workload::A => &["A", "E", "G"],
            Workload::B => &["E"],
        }
    }

    /// The `B`-side attributes.
    pub fn rhs(self) -> &'static [&'static str] {
        &["B"]
    }

    /// Parses `"A"` / `"B"`.
    pub fn parse(s: &str) -> Option<Workload> {
        match s {
            "A" | "a" => Some(Workload::A),
            "B" | "b" => Some(Workload::B),
            _ => None,
        }
    }
}

/// The paper's Table 4 checkpoint positions (stream lengths).
pub const PAPER_CHECKPOINTS: [u64; 6] =
    [134_576, 672_771, 1_344_591, 2_690_181, 4_035_475, 5_381_203];

/// Scales the paper's checkpoints to a shorter stream, keeping their
/// relative spacing.
pub fn scaled_checkpoints(total_tuples: u64) -> Vec<u64> {
    let full = *PAPER_CHECKPOINTS.last().expect("non-empty") as f64;
    PAPER_CHECKPOINTS
        .iter()
        .map(|&c| ((c as f64 / full) * total_tuples as f64).round() as u64)
        .filter(|&c| c > 0)
        .collect()
}

/// One condition setting's bundle of counters: the exact ground truth
/// plus the three §6.2 competitors (NIPS/CI, DS, ILC), all driven through
/// the one [`ImplicationCounter`] interface — the harness neither knows
/// nor cares which algorithm sits behind each slot.
struct Bundle {
    sigma: u64,
    psi: f64,
    exact: ExactCounter,
    /// Fixed order: NIPS/CI, DS, ILC (matches [`CheckpointRow`]'s columns).
    competitors: [Box<dyn ImplicationCounter>; 3],
}

/// One measurement row: a checkpoint × condition setting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointRow {
    /// Stream position.
    pub tuples: u64,
    /// Minimum support σ.
    pub sigma: u64,
    /// ψ1 threshold.
    pub psi: f64,
    /// Exact implication count.
    pub actual: u64,
    /// NIPS/CI estimate.
    pub nips: f64,
    /// Distinct Sampling estimate.
    pub ds: f64,
    /// ILC count.
    pub ilc: f64,
    /// Memory entries held by each algorithm at the checkpoint.
    pub nips_mem: usize,
    /// DS entries.
    pub ds_mem: usize,
    /// ILC entries.
    pub ilc_mem: usize,
}

impl CheckpointRow {
    /// Relative error of one algorithm against the exact count.
    pub fn rel_err(&self, estimate: f64) -> f64 {
        imp_sketch::estimate::relative_error(self.actual as f64, estimate)
    }
}

/// Runs one workload over `total_tuples` of the OLAP stream, tracking every
/// `(σ, ψ1)` combination, and reports a row per checkpoint × combination.
pub fn run_workload(
    workload: Workload,
    spec: OlapSpec,
    total_tuples: u64,
    checkpoints: &[u64],
    sigmas: &[u64],
    psis: &[f64],
    seed: u64,
) -> Vec<CheckpointRow> {
    let sch = schema();
    let proj_a = Projector::new(&sch, sch.attr_set(workload.lhs()));
    let proj_b = Projector::new(&sch, sch.attr_set(workload.rhs()));
    let mut bundles: Vec<Bundle> = sigmas
        .iter()
        .flat_map(|&sigma| psis.iter().map(move |&psi| (sigma, psi)))
        .map(|(sigma, psi)| {
            let cond = OlapSpec::conditions(sigma, psi);
            Bundle {
                sigma,
                psi,
                exact: ExactCounter::new(cond),
                competitors: [
                    Box::new(
                        EstimatorConfig::new(cond)
                            .bitmaps(NIPS_BITMAPS)
                            .fringe(Fringe::Bounded(NIPS_FRINGE))
                            .seed(seed)
                            .build(),
                    ),
                    Box::new(DistinctSampling::new(cond, DS_SAMPLE_SIZE, seed ^ 0xd5)),
                    Box::new(Ilc::new(cond, ILC_EPSILON)),
                ],
            }
        })
        .collect();

    let mut stream = OlapStream::new(spec);
    let mut rows = Vec::new();
    let mut buf_a = Vec::new();
    let mut buf_b = Vec::new();
    let mut next_cp = 0usize;
    let checkpoints: Vec<u64> = {
        let mut cps: Vec<u64> = checkpoints.iter().copied().filter(|&c| c > 0).collect();
        cps.sort_unstable();
        cps.dedup();
        cps
    };
    for pos in 1..=total_tuples {
        let t = stream.next_tuple().expect("stream is infinite");
        proj_a.project_into(&t, &mut buf_a);
        proj_b.project_into(&t, &mut buf_b);
        for bundle in &mut bundles {
            bundle.exact.update(&buf_a, &buf_b);
            for counter in &mut bundle.competitors {
                counter.update(&buf_a, &buf_b);
            }
        }
        while next_cp < checkpoints.len() && pos == checkpoints[next_cp] {
            for bundle in &bundles {
                let [nips, ds, ilc] = &bundle.competitors;
                rows.push(CheckpointRow {
                    tuples: pos,
                    sigma: bundle.sigma,
                    psi: bundle.psi,
                    actual: bundle.exact.exact_implication_count(),
                    nips: nips.implication_count(),
                    ds: ds.implication_count(),
                    ilc: ilc.implication_count(),
                    nips_mem: nips.memory_entries(),
                    ds_mem: ds.memory_entries(),
                    ilc_mem: ilc.memory_entries(),
                });
            }
            next_cp += 1;
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkpoint_scaling_keeps_spacing() {
        let cps = scaled_checkpoints(538_120);
        assert_eq!(cps.len(), 6);
        assert_eq!(*cps.last().unwrap(), 538_120);
        assert!((cps[0] as f64 / 13_458.0 - 1.0).abs() < 0.01);
    }

    #[test]
    fn workload_attribute_sets() {
        assert_eq!(Workload::A.lhs(), &["A", "E", "G"]);
        assert_eq!(Workload::B.lhs(), &["E"]);
        assert_eq!(Workload::parse("a"), Some(Workload::A));
        assert_eq!(Workload::parse("x"), None);
    }

    #[test]
    fn small_run_produces_rows_with_sane_errors() {
        let rows = run_workload(
            Workload::B,
            OlapSpec::default(),
            60_000,
            &[30_000, 60_000],
            &[5],
            &[0.6],
            1,
        );
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.actual > 0, "exact count must be positive: {r:?}");
            // NIPS should be in the right ballpark even at this tiny scale.
            assert!(r.rel_err(r.nips) < 0.8, "NIPS error implausible: {r:?}");
        }
        // Counts grow with the stream.
        assert!(rows[1].actual >= rows[0].actual);
    }

    #[test]
    fn workload_a_counts_overtake_workload_b() {
        // Table 4's defining shape: workload B saturates near its active
        // `E` population while the compound workload keeps growing and
        // dwarfs it (608 vs 50 already at the paper's first checkpoint;
        // our synthetic stand-in crosses over a little later).
        let a = run_workload(
            Workload::A,
            OlapSpec::default(),
            400_000,
            &[400_000],
            &[5],
            &[0.6],
            2,
        );
        let b = run_workload(
            Workload::B,
            OlapSpec::default(),
            400_000,
            &[400_000],
            &[5],
            &[0.6],
            2,
        );
        assert!(
            a[0].actual > 2 * b[0].actual,
            "A: {}, B: {}",
            a[0].actual,
            b[0].actual
        );
        assert!(b[0].actual > 0);
    }
}
