//! Minimal command-line parsing for the experiment binaries.
//!
//! Supports `--key value` options and bare `--flag` switches; anything the
//! binary does not recognize aborts with the usage string, so typos never
//! silently fall back to defaults.

use std::collections::BTreeMap;

/// Parsed command-line arguments.
#[derive(Debug, Clone, Default)]
pub struct Args {
    opts: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`, validating every key against
    /// `allowed_opts` / `allowed_flags`. Prints `usage` and exits on
    /// `--help` or on an unknown key.
    pub fn parse(usage: &str, allowed_opts: &[&str], allowed_flags: &[&str]) -> Self {
        Self::parse_from(std::env::args().skip(1), usage, allowed_opts, allowed_flags)
            .unwrap_or_else(|msg| {
                eprintln!("{msg}\n\n{usage}");
                std::process::exit(2);
            })
    }

    /// Testable core of [`Args::parse`].
    pub fn parse_from(
        raw: impl IntoIterator<Item = String>,
        usage: &str,
        allowed_opts: &[&str],
        allowed_flags: &[&str],
    ) -> Result<Self, String> {
        let mut out = Args::default();
        let mut iter = raw.into_iter();
        while let Some(arg) = iter.next() {
            if arg == "--help" || arg == "-h" {
                println!("{usage}");
                std::process::exit(0);
            }
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected argument {arg:?}"))?;
            if allowed_flags.contains(&key) {
                out.flags.push(key.to_owned());
            } else if allowed_opts.contains(&key) {
                let value = iter
                    .next()
                    .ok_or_else(|| format!("--{key} needs a value"))?;
                out.opts.insert(key.to_owned(), value);
            } else {
                return Err(format!("unknown option --{key}"));
            }
        }
        Ok(out)
    }

    /// Whether `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw value of `--name`, if given.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.opts.get(name).map(String::as_str)
    }

    /// Parses `--name` as `T`, falling back to `default`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|e| {
                eprintln!("invalid value for --{name}: {e}");
                std::process::exit(2);
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Args, String> {
        Args::parse_from(
            args.iter().map(|s| s.to_string()),
            "usage",
            &["reps", "seed"],
            &["full"],
        )
    }

    #[test]
    fn parses_options_and_flags() {
        let a = parse(&["--reps", "7", "--full"]).unwrap();
        assert_eq!(a.get_or("reps", 0u32), 7);
        assert!(a.flag("full"));
        assert!(!a.flag("quick"));
        assert_eq!(a.get_or("seed", 42u64), 42);
    }

    #[test]
    fn rejects_unknown_options() {
        assert!(parse(&["--bogus", "1"]).is_err());
        assert!(parse(&["positional"]).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--reps"]).is_err());
    }
}
