//! Aligned text tables and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A simple column-aligned table accumulated row by row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = w - cell.chars().count();
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = cell
                    .chars()
                    .all(|c| c.is_ascii_digit() || ".%-+eE,".contains(c));
                if numeric && !cell.is_empty() {
                    for _ in 0..pad {
                        out.push(' ');
                    }
                    out.push_str(cell);
                } else {
                    out.push_str(cell);
                    for _ in 0..pad {
                        out.push(' ');
                    }
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (RFC-4180-lite: quotes only when needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        };
        let line = |cells: &[String]| -> String {
            cells.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
        };
        let _ = writeln!(out, "{}", line(&self.headers));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row));
        }
        out
    }

    /// Writes the CSV form to a file.
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_csv().as_bytes())
    }
}

/// Formats a float with three significant-ish decimals, trimming noise.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats a ratio as a percentage with one decimal.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "count"]);
        t.row(["alpha", "1"]);
        t.row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escapes_when_needed() {
        let mut t = Table::new(["k", "v"]);
        t.row(["plain", "has,comma"]);
        t.row(["quote\"y", "x"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"quote\"\"y\""));
        assert!(csv.starts_with("k,v\n"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.0567), "0.057");
        assert_eq!(fmt_f64(42.123), "42.1");
        assert_eq!(fmt_f64(123456.0), "123456");
        assert_eq!(fmt_pct(0.0567), "5.7%");
    }
}
