//! Sharded-ingestion throughput: tuples/second through
//! [`ShardedEstimator`] at 1, 2, 4 and 8 worker shards, against the same
//! pre-hashed zipf-ish workload. The 1-shard case measures the pipeline
//! overhead over plain sequential updates (also benched here as the
//! baseline); results at every width are bit-identical by construction.

#![allow(missing_docs)] // criterion_group expands undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use imp_core::{EstimatorConfig, ImplicationConditions, ShardedEstimator};
use imp_sketch::hash::mix64;

const STREAM: u64 = 400_000;

/// Skewed loyal/disloyal pair stream, pre-materialized so the benchmark
/// times ingestion rather than generation.
fn stream() -> Vec<(u64, u64)> {
    (0..STREAM)
        .map(|i| {
            let a = mix64(i) % (STREAM / 8);
            let b = if a.is_multiple_of(5) { i % 64 } else { a % 997 };
            (a, b)
        })
        .collect()
}

fn config() -> EstimatorConfig {
    EstimatorConfig::new(ImplicationConditions::one_to_c(2, 0.8, 2)).seed(1)
}

fn bench_parallel_ingest(c: &mut Criterion) {
    let data = stream();
    let mut g = c.benchmark_group("parallel_ingest");
    g.throughput(Throughput::Elements(data.len() as u64));

    g.bench_function("sequential_baseline", |bench| {
        bench.iter(|| {
            let mut est = config().build();
            est.update_batch(black_box(&data));
            black_box(est.estimate_now())
        });
    });

    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("sharded", threads),
            &threads,
            |bench, &threads| {
                bench.iter(|| {
                    let mut sharded = ShardedEstimator::new(config().build(), threads);
                    for chunk in data.chunks(4096) {
                        sharded.update_batch(black_box(chunk));
                    }
                    black_box(sharded.finish().estimate_now())
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parallel_ingest
}
criterion_main!(benches);
