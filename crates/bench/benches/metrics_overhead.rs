//! Observability tax on the §4.6 hot path: the `metrics` feature pins
//! its per-update overhead here. The `update_hot_path` group is the
//! contract — run it twice and compare:
//!
//! ```text
//! cargo bench -p imp-bench --bench metrics_overhead
//! cargo bench -p imp-bench --bench metrics_overhead --no-default-features
//! ```
//!
//! With the feature enabled every [`imp_core::ImplicationEstimator::update`]
//! records one [`imp_core::UpdateOutcome`] into relaxed atomics; the
//! budget is ≤ 5% over the disabled build (DESIGN.md §8.2). With the
//! feature off the metrics types are zero-sized no-ops, so the two runs
//! must be statistically indistinguishable — that build *is* the
//! baseline, not an approximation of it.

#![allow(missing_docs)] // criterion_group expands undocumented items

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use imp_core::{EstimatorConfig, ImplicationConditions, ShardedEstimator};

/// Mixed loyal/disloyal pair stream, matching `update_cost.rs` so the
/// two benches are comparable.
fn stream(n: u64) -> Vec<([u64; 1], [u64; 1])> {
    (0..n)
        .map(|i| {
            let a = imp_sketch::hash::mix64(i) % (n / 4);
            let b = if a.is_multiple_of(3) { a % 50 } else { i % 50 };
            ([a], [b])
        })
        .collect()
}

/// The contract benchmark: sequential `update` with whatever metrics
/// configuration the build was compiled with. The bench name encodes the
/// active configuration so saved Criterion baselines never silently
/// compare enabled against disabled.
fn bench_update_hot_path(c: &mut Criterion) {
    let cond = ImplicationConditions::one_to_c(2, 0.8, 2);
    let data = stream(100_000);
    let mut g = c.benchmark_group("update_hot_path");
    g.throughput(Throughput::Elements(data.len() as u64));
    let label = if imp_core::MetricsRegistry::enabled() {
        "metrics_enabled"
    } else {
        "metrics_disabled"
    };
    g.bench_function(label, |bench| {
        bench.iter(|| {
            let mut est = EstimatorConfig::new(cond).seed(1).build();
            for (a, b) in &data {
                est.update(black_box(a), black_box(b));
            }
            black_box(est.estimate_now())
        });
    });
    g.finish();
}

/// Reading the registry while the estimator runs — the `--stats-interval`
/// pattern. Sampling cost is off the per-update path entirely; this
/// group documents what one `samples()` sweep costs the reporter thread.
fn bench_sampling(c: &mut Criterion) {
    let cond = ImplicationConditions::one_to_c(2, 0.8, 2);
    let data = stream(50_000);
    let mut est = EstimatorConfig::new(cond).seed(1).build();
    for (a, b) in &data {
        est.update(a, b);
    }
    let mut g = c.benchmark_group("registry_read");
    g.bench_function("samples", |bench| {
        bench.iter(|| black_box(est.metrics().samples()));
    });
    g.bench_function("line_protocol", |bench| {
        bench.iter(|| black_box(est.metrics().line_protocol("implicate")));
    });
    g.finish();
}

/// The `trace` feature's hot-path tax, in the three states a build can
/// occupy: compiled out (`--no-default-features`), compiled in but
/// inactive (the default — every estimator starts with a disabled
/// [`imp_core::TraceHandle`], so each update pays one `Option` check),
/// and actively journaling into a ring. The DESIGN.md §8.3 budget:
/// inactive must stay within 5% of compiled out, mirroring the metrics
/// contract above; journaling cost is reported, not bounded.
fn bench_trace_states(c: &mut Criterion) {
    let cond = ImplicationConditions::one_to_c(2, 0.8, 2);
    let data = stream(100_000);
    let mut g = c.benchmark_group("trace_hot_path");
    g.throughput(Throughput::Elements(data.len() as u64));
    let label = if imp_core::TraceHandle::enabled() {
        "trace_inactive"
    } else {
        "trace_compiled_out"
    };
    g.bench_function(label, |bench| {
        bench.iter(|| {
            let mut est = EstimatorConfig::new(cond).seed(1).build();
            for (a, b) in &data {
                est.update(black_box(a), black_box(b));
            }
            black_box(est.estimate_now())
        });
    });
    if imp_core::TraceHandle::enabled() {
        g.bench_function("trace_journaling", |bench| {
            bench.iter(|| {
                let mut est = EstimatorConfig::new(cond).seed(1).build();
                est.set_trace(imp_core::TraceHandle::with_capacity(1 << 16));
                for (a, b) in &data {
                    est.update(black_box(a), black_box(b));
                }
                black_box(est.estimate_now())
            });
        });
    }
    g.finish();
}

/// Sharded ingestion with the shared registry: shards of one estimator
/// hammer the same atomics, the worst contention case the design accepts
/// (see DESIGN.md §8.2 for why relaxed ordering makes this safe).
fn bench_sharded_shared_registry(c: &mut Criterion) {
    let cond = ImplicationConditions::one_to_c(2, 0.8, 2);
    let pairs: Vec<(u64, u64)> = {
        let data = stream(100_000);
        let probe = EstimatorConfig::new(cond).seed(1).build();
        let sharded = ShardedEstimator::new(probe, 1);
        let hasher = sharded.pair_hasher();
        data.iter().map(|(a, b)| hasher.hash_pair(a, b)).collect()
    };
    let mut g = c.benchmark_group("sharded_shared_registry");
    g.throughput(Throughput::Elements(pairs.len() as u64));
    for threads in [1usize, 4] {
        g.bench_function(format!("threads_{threads}"), |bench| {
            bench.iter(|| {
                let est = EstimatorConfig::new(cond).seed(1).build();
                let mut sharded = ShardedEstimator::new(est, threads);
                sharded.update_hashed_batch(black_box(&pairs));
                black_box(sharded.finish().estimate_now())
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_update_hot_path, bench_sampling, bench_trace_states, bench_sharded_shared_registry
}
criterion_main!(benches);
