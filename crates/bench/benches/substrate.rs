//! Substrate micro-benchmarks: hash families, top-c selection, PCSA
//! insertion, estimate read-off, and generator throughput.

#![allow(missing_docs)] // criterion_group expands undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

use imp_core::{EstimatorConfig, ImplicationConditions};
use imp_datagen::olap::{OlapSpec, OlapStream};
use imp_datagen::{DatasetOne, DatasetOneSpec};
use imp_sketch::hash::{BoxedHasher, HashFamily, Hasher64};
use imp_sketch::pcsa::Pcsa;
use imp_sketch::topc::{sum_top_c, TopCHeap};

fn bench_hash_families(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("hash_u64");
    g.throughput(Throughput::Elements(1));
    for family in [
        HashFamily::Mix,
        HashFamily::Pairwise,
        HashFamily::FourWise,
        HashFamily::Gf2Linear,
    ] {
        let h = BoxedHasher::from_family(family, &mut rng);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{family:?}")),
            &h,
            |bench, h| {
                let mut x = 0u64;
                bench.iter(|| {
                    x = x.wrapping_add(0x9e37);
                    black_box(h.hash_u64(black_box(x)))
                });
            },
        );
    }
    g.finish();
}

fn bench_topc(c: &mut Criterion) {
    let counts: Vec<u64> = (0..16).map(|i| (i * 37 + 5) % 100).collect();
    let mut g = c.benchmark_group("top_c");
    g.bench_function("selection_16_of_4", |bench| {
        bench.iter(|| black_box(sum_top_c(black_box(&counts), 4)));
    });
    g.bench_function("heap_16_of_4", |bench| {
        bench.iter(|| {
            let mut h = TopCHeap::new(4);
            for &x in &counts {
                h.offer(x);
            }
            black_box(h.sum())
        });
    });
    g.finish();
}

fn bench_pcsa(c: &mut Criterion) {
    let mut g = c.benchmark_group("pcsa");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("insert_10k_m64", |bench| {
        bench.iter(|| {
            let mut p = Pcsa::new(64, 7);
            for x in 0..10_000u64 {
                p.insert_u64(black_box(x));
            }
            black_box(p.estimate())
        });
    });
    g.finish();
}

fn bench_estimate_readoff(c: &mut Criterion) {
    let cond = ImplicationConditions::one_to_c(2, 0.8, 2);
    let mut est = EstimatorConfig::new(cond).seed(1).build();
    for i in 0..100_000u64 {
        est.update(&[i % 10_000], &[i % 7]);
    }
    c.bench_function("ci_estimate_readoff", |bench| {
        bench.iter(|| black_box(est.estimate_now()));
    });
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("generators");
    g.throughput(Throughput::Elements(50_000));
    g.bench_function("olap_50k_tuples", |bench| {
        bench.iter(|| {
            let mut s = OlapStream::new(OlapSpec::default());
            for _ in 0..50_000 {
                black_box(s.next_row());
            }
        });
    });
    g.bench_function("dataset_one_card400", |bench| {
        bench.iter(|| {
            let spec = DatasetOneSpec::paper(400, 200, 2, 3);
            black_box(DatasetOne::generate(&spec).len())
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_hash_families, bench_topc, bench_pcsa, bench_estimate_readoff, bench_generators
}
criterion_main!(benches);
