//! §4.6 complexity claims: per-item update cost of NIPS/CI (`O(K log K)`
//! amortized, independent of stream length and cardinalities) against the
//! exact counter and the competing algorithms.

#![allow(missing_docs)] // criterion_group expands undocumented items

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

use imp_baselines::{DistinctSampling, ExactCounter, Ilc, ImplicationCounter};
use imp_core::{EstimatorConfig, ImplicationConditions};

/// Pre-generates a mixed loyal/disloyal pair stream.
fn stream(n: u64) -> Vec<([u64; 1], [u64; 1])> {
    (0..n)
        .map(|i| {
            let a = imp_sketch::hash::mix64(i) % (n / 4);
            let b = if a.is_multiple_of(3) { a % 50 } else { i % 50 };
            ([a], [b])
        })
        .collect()
}

fn bench_updates(c: &mut Criterion) {
    let cond = ImplicationConditions::one_to_c(2, 0.8, 2);
    let data = stream(100_000);
    let mut g = c.benchmark_group("update_per_item");
    g.throughput(Throughput::Elements(data.len() as u64));

    g.bench_function("nips_ci_64x4", |bench| {
        bench.iter(|| {
            let mut est = EstimatorConfig::new(cond).seed(1).build();
            for (a, b) in &data {
                est.update(black_box(a), black_box(b));
            }
            black_box(est.estimate_now())
        });
    });

    g.bench_function("exact_hashtable", |bench| {
        bench.iter(|| {
            let mut exact = ExactCounter::new(cond);
            for (a, b) in &data {
                exact.update(black_box(a), black_box(b));
            }
            black_box(exact.implication_count())
        });
    });

    g.bench_function("distinct_sampling_1920", |bench| {
        bench.iter(|| {
            let mut ds = DistinctSampling::new(cond, 1920, 2);
            for (a, b) in &data {
                ds.update(black_box(a), black_box(b));
            }
            black_box(ds.implication_count())
        });
    });

    g.bench_function("ilc_eps_0.01", |bench| {
        bench.iter(|| {
            let mut ilc = Ilc::new(cond, 0.01);
            for (a, b) in &data {
                ilc.update(black_box(a), black_box(b));
            }
            black_box(ilc.implication_count())
        });
    });
    g.finish();
}

/// Per-item cost must not grow with `K` beyond the `O(K log K)` bound —
/// sweep `K` and report.
fn bench_k_scaling(c: &mut Criterion) {
    let data = stream(50_000);
    let mut g = c.benchmark_group("nips_update_vs_k");
    g.throughput(Throughput::Elements(data.len() as u64));
    for k in [1u32, 2, 4, 8, 16] {
        let cond = ImplicationConditions::one_to_c(k, 0.8, 2);
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |bench, _| {
            bench.iter(|| {
                let mut est = EstimatorConfig::new(cond).seed(1).build();
                for (a, b) in &data {
                    est.update(black_box(a), black_box(b));
                }
                black_box(est.estimate_now())
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_updates, bench_k_scaling
}
criterion_main!(benches);
