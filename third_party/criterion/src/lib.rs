//! In-tree API-compatible subset of `criterion` for offline builds.
//! Runs each benchmark closure a handful of times and prints a rough
//! nanoseconds-per-iteration figure; no statistics, plots, or baselines.
//! Not the crates.io package; see `third_party/README.md`.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn measurement_time(self, _d: std::time::Duration) -> Self {
        self
    }

    pub fn warm_up_time(self, _d: std::time::Duration) -> Self {
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(name);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn final_summary(&mut self) {}
}

/// Group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn sampling_mode(&mut self, _m: SamplingMode) -> &mut Self {
        self
    }

    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn bench_with_input<I: std::fmt::Display, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Declared throughput of a benchmark (ignored).
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Sampling mode (ignored).
pub enum SamplingMode {
    Auto,
    Flat,
    Linear,
}

/// Batch size for `iter_batched` (ignored beyond compile compat).
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters: usize,
    nanos_per_iter: f64,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Self {
            iters: sample_size.max(1),
            nanos_per_iter: f64::NAN,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.nanos_per_iter = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut total = 0.0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos() as f64;
        }
        self.nanos_per_iter = total / self.iters as f64;
    }

    pub fn iter_batched_ref<I, O, S: FnMut() -> I, F: FnMut(&mut I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let mut total = 0.0;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed().as_nanos() as f64;
        }
        self.nanos_per_iter = total / self.iters as f64;
    }

    fn report(&self, name: &str) {
        if self.nanos_per_iter.is_nan() {
            println!("{name}: no measurement");
        } else {
            println!("{name}: ~{:.0} ns/iter", self.nanos_per_iter);
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
