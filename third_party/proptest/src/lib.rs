//! In-tree API-compatible subset of `proptest` for offline builds.
//!
//! Implements the strategy/`proptest!` surface this workspace uses with
//! plain pseudo-random generation and **no shrinking** — a failing case
//! panics with the un-shrunk inputs. Not the crates.io package; see
//! `third_party/README.md`.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    /// Failure raised by `prop_assert!`-family macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            Self(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration (`cases` only).
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(256);
            Self { cases }
        }
    }

    /// Deterministic per-test generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn deterministic(seed: u64) -> Self {
            Self(seed ^ 0x6A09_E667_F3BC_C908)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A value generator. Unlike real proptest there is no shrinking: a
/// strategy simply produces values.
pub trait Strategy: Clone {
    type Value: Debug + Clone;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        O: Debug + Clone,
        F: Fn(Self::Value) -> O + Clone,
    {
        Map { inner: self, f }
    }

    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
    {
        Filter {
            inner: self,
            f,
            whence,
        }
    }

    /// Type-erased form (compat with `.boxed()` call sites).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
    {
        BoxedStrategy(std::rc::Rc::new(move |rng| self.generate(rng)))
    }
}

/// `Strategy::prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug + Clone,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `Strategy::prop_filter` adapter (rejection sampling, bounded retries).
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    whence: &'static str,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates: {}", self.whence);
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Fn(&mut TestRng) -> T>);

impl<T: Debug + Clone> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Debug + Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($(($($n:ident @ $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A @ 0)
    (A @ 0, B @ 1)
    (A @ 0, B @ 1, C @ 2)
    (A @ 0, B @ 1, C @ 2, D @ 3)
    (A @ 0, B @ 1, C @ 2, D @ 3, E @ 4)
    (A @ 0, B @ 1, C @ 2, D @ 3, E @ 4, F @ 5)
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Debug + Clone + 'static {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for the full value domain of `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Either boolean with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: AnyBool = AnyBool;
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Element-count bounds for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    /// Vector of `element` values with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi, "empty size range");
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform {
        ($name:ident, $n:expr) => {
            /// Array of `$n` values from one element strategy.
            pub fn $name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        };
    }
    uniform!(uniform2, 2);
    uniform!(uniform3, 3);
    uniform!(uniform4, 4);

    #[derive(Debug, Clone)]
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }
}

pub mod strategy {
    pub use super::{BoxedStrategy, Just, Strategy};
}

pub mod prelude {
    pub use super::test_runner::TestCaseError;
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };

    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use super::super::{array, bool, collection, strategy};
    }
}

/// Hashes a test name into a stable per-test seed.
#[doc(hidden)]
pub fn seed_for(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{}: `{:?}` == `{:?}`", format!($($fmt)*), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        if *l == *r {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    // Without one.
    (
        $($rest:tt)*
    ) => {
        $crate::__proptest_fns! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident($($p:pat in $s:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                $crate::seed_for(concat!(module_path!(), "::", stringify!($name))),
            );
            for case in 0..config.cases {
                let inputs = ($($crate::Strategy::generate(&($s), &mut rng),)+);
                let ($($p,)+) = inputs.clone();
                let outcome = (move || -> ::core::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {case} failed: {e}\ninputs {}: {:?}",
                        stringify!(($($p),+)),
                        inputs,
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}
