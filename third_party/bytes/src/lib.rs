//! In-tree API-compatible subset of the `bytes` crate for offline builds.
//! Not the crates.io package; see `third_party/README.md`.
use std::ops::Deref;
use std::sync::Arc;

/// Backing storage: shared heap allocation or a borrowed `'static` slice
/// (the latter keeps `from_static` zero-copy, as in the upstream crate).
#[derive(Clone)]
enum Repr {
    Shared(Arc<[u8]>),
    Static(&'static [u8]),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Shared(a) => a,
            Repr::Static(s) => s,
        }
    }
}

/// Cheaply cloneable contiguous byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Repr,
    start: usize,
    end: usize,
}

impl Default for Bytes {
    fn default() -> Self {
        Self::from_static(&[])
    }
}

impl Bytes {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn from_static(s: &'static [u8]) -> Self {
        Self {
            data: Repr::Static(s),
            start: 0,
            end: s.len(),
        }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(range.start <= range.end && self.start + range.end <= self.end);
        Self {
            data: self.data.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            data: Repr::Shared(v.into()),
            start: 0,
            end,
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Self::from_static(s)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Self {
        Self::from(b.buf)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data.as_slice()[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::borrow::Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_ref().iter()
    }
}

/// Growable byte buffer.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn extend_from_slice(&mut self, s: &[u8]) {
        self.buf.extend_from_slice(s);
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read side: sequential typed reads off a byte source.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        let n = dst.len();
        dst.copy_from_slice(&self.chunk()[..n]);
        self.advance(n);
    }

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.start += cnt;
    }
}

/// Write side: sequential typed appends onto a byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}
