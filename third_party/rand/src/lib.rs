//! In-tree API-compatible subset of `rand` 0.8 for offline builds.
//! Not stream-compatible with the crates.io crate: a given seed yields a
//! different (but internally reproducible) sequence. See
//! `third_party/README.md` for the full divergence list.

/// Core random source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;
    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let w = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&w[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

mod sealed {
    /// Types producible by [`super::Rng::gen`].
    pub trait Standardable {
        fn from_rng<R: super::RngCore + ?Sized>(rng: &mut R) -> Self;
    }
}
use sealed::Standardable;

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standardable for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standardable for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standardable for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standardable for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standardable for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi - lo) as u128 + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standardable>(&mut self) -> T {
        T::from_rng(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard seedable generator (xoshiro256** here; the real crate
    /// uses ChaCha12 — streams differ, quality is comparable).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let w = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&w[..n]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, w) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *w = u64::from_le_bytes(b);
            }
            // A pathological all-zero state would be a fixed point.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers (Fisher–Yates shuffle).
    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
