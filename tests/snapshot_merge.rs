//! Property tests for the operational extensions: snapshot round-trips
//! and distributed merges under arbitrary streams.

use proptest::prelude::*;

use implicate::{
    EstimatorConfig, Fringe, ImplicationConditions, ImplicationEstimator, MultiplicityPolicy,
    ShardedEstimator,
};

fn arb_cond() -> impl Strategy<Value = ImplicationConditions> {
    (1u32..4, 1u64..6, 0u32..=100, prop::bool::ANY).prop_map(|(k, sigma, psi, tolerant)| {
        ImplicationConditions::builder()
            .max_multiplicity(k)
            .min_support(sigma)
            .top_confidence_ratio(k, psi, 100)
            .multiplicity_policy(if tolerant {
                MultiplicityPolicy::TrackTop
            } else {
                MultiplicityPolicy::Strict
            })
            .build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Snapshot → restore is lossless for the estimate, the memory
    /// accounting, and all future behaviour.
    #[test]
    fn snapshot_roundtrip_is_lossless(
        cond in arb_cond(),
        prefix in proptest::collection::vec((0u64..300, 0u64..6), 0..600),
        suffix in proptest::collection::vec((0u64..300, 0u64..6), 0..300),
        seed in 0u64..1000,
    ) {
        let mut original = EstimatorConfig::new(cond).bitmaps(16).seed(seed).build();
        for &(a, b) in &prefix {
            original.update(&[a], &[b]);
        }
        let mut restored =
            ImplicationEstimator::from_bytes(original.to_bytes()).expect("restore");
        prop_assert_eq!(restored.estimate_now(), original.estimate_now());
        prop_assert_eq!(restored.entries(), original.entries());
        for &(a, b) in &suffix {
            original.update(&[a], &[b]);
            restored.update(&[a], &[b]);
        }
        prop_assert_eq!(restored.estimate_now(), original.estimate_now());
        prop_assert_eq!(restored.entries(), original.entries());
    }

    /// Merging sketches over itemset-disjoint streams equals one sketch
    /// over the union, for any conditions (unbounded cells, so no budget
    /// shedding interferes with exactness).
    #[test]
    fn disjoint_merge_equals_union(
        cond in arb_cond(),
        s1 in proptest::collection::vec((0u64..200, 0u64..5), 0..400),
        s2 in proptest::collection::vec((200u64..400, 0u64..5), 0..400),
        seed in 0u64..1000,
    ) {
        let mut a = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build();
        let mut b = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build();
        let mut whole = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build();
        for &(x, y) in &s1 {
            a.update(&[x], &[y]);
            whole.update(&[x], &[y]);
        }
        for &(x, y) in &s2 {
            b.update(&[x], &[y]);
            whole.update(&[x], &[y]);
        }
        a.merge(&b);
        prop_assert_eq!(a.estimate_now(), whole.estimate_now());
        prop_assert_eq!(a.tuples_seen(), whole.tuples_seen());
    }

    /// Merge is commutative on the estimates (disjoint streams).
    #[test]
    fn merge_is_commutative(
        cond in arb_cond(),
        s1 in proptest::collection::vec((0u64..200, 0u64..5), 0..300),
        s2 in proptest::collection::vec((200u64..400, 0u64..5), 0..300),
        seed in 0u64..1000,
    ) {
        let build = |stream: &[(u64, u64)]| {
            let mut e = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build();
            for &(x, y) in stream {
                e.update(&[x], &[y]);
            }
            e
        };
        let mut ab = build(&s1);
        ab.merge(&build(&s2));
        let mut ba = build(&s2);
        ba.merge(&build(&s1));
        prop_assert_eq!(ab.estimate_now(), ba.estimate_now());
    }

    /// Merging never *loses* a recorded violation: the merged S̄ estimate
    /// is at least each side's S̄ estimate.
    #[test]
    fn merge_preserves_violations(
        cond in arb_cond(),
        s1 in proptest::collection::vec((0u64..100, 0u64..5), 0..400),
        s2 in proptest::collection::vec((0u64..100, 0u64..5), 0..400),
        seed in 0u64..1000,
    ) {
        let build = |stream: &[(u64, u64)]| {
            let mut e = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build();
            for &(x, y) in stream {
                e.update(&[x], &[y]);
            }
            e
        };
        let a = build(&s1);
        let b = build(&s2);
        let (sa, sb) = (
            a.estimate_now().non_implication_count,
            b.estimate_now().non_implication_count,
        );
        let mut merged = build(&s1);
        merged.merge(&b);
        let sm = merged.estimate_now().non_implication_count;
        prop_assert!(sm >= sa.max(sb) - 1e-9, "merged {sm} < max({sa}, {sb})");
    }

    /// Splitting any stream in half, ingesting the halves on separate
    /// shard groups, and merging the read-offs equals one sequential
    /// pass — estimate, tuple count, and snapshot bytes.
    #[test]
    fn sharded_halves_equal_full_sequential_pass(
        cond in arb_cond(),
        stream in proptest::collection::vec((0u64..300, 0u64..6), 0..600),
        split in 0usize..600,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let config = EstimatorConfig::new(cond).bitmaps(16).seed(seed);
        let mut seq = config.build();
        for &(a, b) in &stream {
            seq.update(&[a], &[b]);
        }
        let split = split.min(stream.len());
        let mut sharded = ShardedEstimator::new(config.build(), threads);
        for &(a, b) in &stream[..split] {
            sharded.update(&[a], &[b]);
        }
        // Hand the first half's read-off to a fresh shard group for the
        // second half — the resume shape of a long-running ingest.
        let mut sharded = ShardedEstimator::new(sharded.finish(), threads);
        for &(a, b) in &stream[split..] {
            sharded.update(&[a], &[b]);
        }
        let par = sharded.finish();
        prop_assert_eq!(par.estimate_now(), seq.estimate_now());
        prop_assert_eq!(par.tuples_seen(), seq.tuples_seen());
        prop_assert_eq!(par.to_bytes(), seq.to_bytes());
    }
}
