//! Property tests for the operational extensions: snapshot round-trips
//! and distributed merges under arbitrary streams.

use proptest::prelude::*;

use implicate::core::wire::{WireDecoder, WireError, WireSnapshot};
use implicate::{
    EstimatorConfig, Fringe, ImplicationConditions, ImplicationEstimator, MultiplicityPolicy,
    ShardedEstimator,
};

fn arb_cond() -> impl Strategy<Value = ImplicationConditions> {
    (1u32..4, 1u64..6, 0u32..=100, prop::bool::ANY).prop_map(|(k, sigma, psi, tolerant)| {
        ImplicationConditions::builder()
            .max_multiplicity(k)
            .min_support(sigma)
            .top_confidence_ratio(k, psi, 100)
            .multiplicity_policy(if tolerant {
                MultiplicityPolicy::TrackTop
            } else {
                MultiplicityPolicy::Strict
            })
            .build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Snapshot → restore is lossless for the estimate, the memory
    /// accounting, and all future behaviour.
    #[test]
    fn snapshot_roundtrip_is_lossless(
        cond in arb_cond(),
        prefix in proptest::collection::vec((0u64..300, 0u64..6), 0..600),
        suffix in proptest::collection::vec((0u64..300, 0u64..6), 0..300),
        seed in 0u64..1000,
    ) {
        let mut original = EstimatorConfig::new(cond).bitmaps(16).seed(seed).build();
        for &(a, b) in &prefix {
            original.update(&[a], &[b]);
        }
        let mut restored =
            ImplicationEstimator::from_bytes(original.to_bytes()).expect("restore");
        prop_assert_eq!(restored.estimate_now(), original.estimate_now());
        prop_assert_eq!(restored.entries(), original.entries());
        for &(a, b) in &suffix {
            original.update(&[a], &[b]);
            restored.update(&[a], &[b]);
        }
        prop_assert_eq!(restored.estimate_now(), original.estimate_now());
        prop_assert_eq!(restored.entries(), original.entries());
    }

    /// Merging sketches over itemset-disjoint streams equals one sketch
    /// over the union, for any conditions (unbounded cells, so no budget
    /// shedding interferes with exactness).
    #[test]
    fn disjoint_merge_equals_union(
        cond in arb_cond(),
        s1 in proptest::collection::vec((0u64..200, 0u64..5), 0..400),
        s2 in proptest::collection::vec((200u64..400, 0u64..5), 0..400),
        seed in 0u64..1000,
    ) {
        let mut a = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build();
        let mut b = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build();
        let mut whole = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build();
        for &(x, y) in &s1 {
            a.update(&[x], &[y]);
            whole.update(&[x], &[y]);
        }
        for &(x, y) in &s2 {
            b.update(&[x], &[y]);
            whole.update(&[x], &[y]);
        }
        a.merge(&b);
        prop_assert_eq!(a.estimate_now(), whole.estimate_now());
        prop_assert_eq!(a.tuples_seen(), whole.tuples_seen());
    }

    /// Merge is commutative on the estimates (disjoint streams).
    #[test]
    fn merge_is_commutative(
        cond in arb_cond(),
        s1 in proptest::collection::vec((0u64..200, 0u64..5), 0..300),
        s2 in proptest::collection::vec((200u64..400, 0u64..5), 0..300),
        seed in 0u64..1000,
    ) {
        let build = |stream: &[(u64, u64)]| {
            let mut e = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build();
            for &(x, y) in stream {
                e.update(&[x], &[y]);
            }
            e
        };
        let mut ab = build(&s1);
        ab.merge(&build(&s2));
        let mut ba = build(&s2);
        ba.merge(&build(&s1));
        prop_assert_eq!(ab.estimate_now(), ba.estimate_now());
    }

    /// Merging never *loses* a recorded violation: the merged S̄ estimate
    /// is at least each side's S̄ estimate.
    #[test]
    fn merge_preserves_violations(
        cond in arb_cond(),
        s1 in proptest::collection::vec((0u64..100, 0u64..5), 0..400),
        s2 in proptest::collection::vec((0u64..100, 0u64..5), 0..400),
        seed in 0u64..1000,
    ) {
        let build = |stream: &[(u64, u64)]| {
            let mut e = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed)
            .build();
            for &(x, y) in stream {
                e.update(&[x], &[y]);
            }
            e
        };
        let a = build(&s1);
        let b = build(&s2);
        let (sa, sb) = (
            a.estimate_now().non_implication_count,
            b.estimate_now().non_implication_count,
        );
        let mut merged = build(&s1);
        merged.merge(&b);
        let sm = merged.estimate_now().non_implication_count;
        prop_assert!(sm >= sa.max(sb) - 1e-9, "merged {sm} < max({sa}, {sb})");
    }

    /// Splitting any stream in half, ingesting the halves on separate
    /// shard groups, and merging the read-offs equals one sequential
    /// pass — estimate, tuple count, and snapshot bytes.
    #[test]
    fn sharded_halves_equal_full_sequential_pass(
        cond in arb_cond(),
        stream in proptest::collection::vec((0u64..300, 0u64..6), 0..600),
        split in 0usize..600,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let config = EstimatorConfig::new(cond).bitmaps(16).seed(seed);
        let mut seq = config.build();
        for &(a, b) in &stream {
            seq.update(&[a], &[b]);
        }
        let split = split.min(stream.len());
        let mut sharded = ShardedEstimator::new(config.build(), threads);
        for &(a, b) in &stream[..split] {
            sharded.update(&[a], &[b]);
        }
        // Hand the first half's read-off to a fresh shard group for the
        // second half — the resume shape of a long-running ingest.
        let mut sharded = ShardedEstimator::new(sharded.finish(), threads);
        for &(a, b) in &stream[split..] {
            sharded.update(&[a], &[b]);
        }
        let par = sharded.finish();
        prop_assert_eq!(par.estimate_now(), seq.estimate_now());
        prop_assert_eq!(par.tuples_seen(), seq.tuples_seen());
        prop_assert_eq!(par.to_bytes(), seq.to_bytes());
    }

    /// Shipping a state over the VERSION 3 wire — full frame, then a
    /// delta after more updates — reconstructs it bit-for-bit, and the
    /// reconstruction stays in lockstep under further updates.
    #[test]
    fn wire_roundtrip_is_lossless_for_full_and_delta(
        cond in arb_cond(),
        prefix in proptest::collection::vec((0u64..300, 0u64..6), 0..600),
        mid in proptest::collection::vec((0u64..300, 0u64..6), 0..300),
        suffix in proptest::collection::vec((0u64..300, 0u64..6), 0..200),
        seed in 0u64..1000,
    ) {
        let mut original = EstimatorConfig::new(cond).bitmaps(16).seed(seed).build();
        for &(a, b) in &prefix {
            original.update(&[a], &[b]);
        }
        let base = WireSnapshot::capture(&original, 1);
        let mut decoder = WireDecoder::new();
        decoder.apply(base.full_frame(9)).expect("full frame");
        for &(a, b) in &mid {
            original.update(&[a], &[b]);
        }
        let tip = WireSnapshot::capture(&original, 2);
        decoder.apply(tip.delta_frame(&base, 9)).expect("delta frame");
        let mut shipped = decoder.into_estimator().expect("decoded replica");
        prop_assert_eq!(shipped.estimate_now(), original.estimate_now());
        prop_assert_eq!(shipped.to_bytes(), original.to_bytes());
        for &(a, b) in &suffix {
            original.update(&[a], &[b]);
            shipped.update(&[a], &[b]);
        }
        prop_assert_eq!(shipped.estimate_now(), original.estimate_now());
    }

    /// Merging wire-decoded replicas of itemset-disjoint streams equals
    /// merging the source estimators directly — shipping through the
    /// codec (full or delta path) is invisible to the merge.
    #[test]
    fn wire_decode_then_merge_equals_direct_merge(
        cond in arb_cond(),
        s1 in proptest::collection::vec((0u64..200, 0u64..5), 0..400),
        s2 in proptest::collection::vec((200u64..400, 0u64..5), 0..400),
        split in 0usize..400,
        seed in 0u64..1000,
    ) {
        let config = EstimatorConfig::new(cond)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(seed);
        let mut a = config.build();
        for &(x, y) in &s1 {
            a.update(&[x], &[y]);
        }
        // Edge B ships a full frame mid-stream and a delta for the rest.
        let mut b = config.build();
        let split = split.min(s2.len());
        for &(x, y) in &s2[..split] {
            b.update(&[x], &[y]);
        }
        let b_base = WireSnapshot::capture(&b, 1);
        for &(x, y) in &s2[split..] {
            b.update(&[x], &[y]);
        }
        let b_tip = WireSnapshot::capture(&b, 2);

        let mut dec_a = WireDecoder::new();
        dec_a.apply(WireSnapshot::capture(&a, 1).full_frame(1)).expect("full A");
        let mut dec_b = WireDecoder::new();
        dec_b.apply(b_base.full_frame(2)).expect("full B");
        dec_b.apply(b_tip.delta_frame(&b_base, 2)).expect("delta B");

        let mut via_wire = config.build();
        via_wire.merge(dec_a.estimator().expect("replica A"));
        via_wire.merge(dec_b.estimator().expect("replica B"));

        let mut direct = config.build();
        direct.merge(&a);
        direct.merge(&b);

        prop_assert_eq!(via_wire.estimate_now(), direct.estimate_now());
        prop_assert_eq!(via_wire.tuples_seen(), direct.tuples_seen());
        prop_assert_eq!(via_wire.to_bytes(), direct.to_bytes());
    }

    /// Decoding any truncation of a valid frame yields a typed
    /// [`WireError`], and arbitrary byte corruption never panics — the
    /// decoder either rejects the frame or survives it.
    #[test]
    fn wire_corruption_yields_typed_errors_never_panics(
        cond in arb_cond(),
        stream in proptest::collection::vec((0u64..300, 0u64..6), 0..400),
        cut in 0usize..4096,
        flips in proptest::collection::vec((0usize..4096, 0u8..8), 1..16),
        seed in 0u64..1000,
    ) {
        let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(seed).build();
        for &(a, b) in &stream {
            est.update(&[a], &[b]);
        }
        let frame = WireSnapshot::capture(&est, 1).full_frame(3);

        let cut = cut % frame.len();
        let mut decoder = WireDecoder::new();
        let err = decoder.apply(frame.slice(0..cut));
        prop_assert!(err.is_err(), "truncation to {cut} bytes accepted");
        // A failed *full* frame must not leave a half-applied replica.
        prop_assert!(decoder.estimator().is_none());

        let mut bytes = frame.to_vec();
        for &(at, bit) in &flips {
            bytes[at % frame.len()] ^= 1 << bit;
        }
        let mut decoder = WireDecoder::new().require_matching(&est);
        match decoder.apply(bytes::Bytes::from(bytes)) {
            // Flips confined to e.g. the node-id varint can still form a
            // valid frame; all that matters here is no panic and no
            // type-confused replica.
            Ok(_) => prop_assert!(decoder.estimator().is_some()),
            Err(e) => prop_assert!(!matches!(e, WireError::BadMagic) || flips.iter().any(|&(at, _)| at % frame.len() < 6)),
        }
    }
}
