//! Behavioural contracts shared by every `ImplicationCounter`
//! implementation, plus property-based agreement checks between the
//! streaming counters and a reference evaluation.

use proptest::prelude::*;

use implicate::{
    DistinctSampling, EstimatorConfig, ExactCounter, Ilc, ImplicationConditions,
    ImplicationCounter, ImplicationStickySampling, NaiveImplicationBitmap,
};

fn all_counters(cond: ImplicationConditions) -> Vec<(&'static str, Box<dyn ImplicationCounter>)> {
    vec![
        ("exact", Box::new(ExactCounter::new(cond))),
        (
            "nips",
            Box::new(EstimatorConfig::new(cond).bitmaps(16).seed(1).build()),
        ),
        ("ds", Box::new(DistinctSampling::new(cond, 256, 2))),
        ("ilc", Box::new(Ilc::new(cond, 0.01))),
        (
            "iss",
            Box::new(ImplicationStickySampling::new(cond, 1000, 3)),
        ),
        (
            "naive",
            Box::new(NaiveImplicationBitmap::new(cond, None, 4)),
        ),
    ]
}

#[test]
fn empty_stream_reads_zero_everywhere() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    for (name, counter) in all_counters(cond) {
        assert_eq!(counter.implication_count(), 0.0, "{name}");
        assert_eq!(counter.memory_entries(), 0, "{name}");
    }
}

#[test]
fn single_pair_counts_once() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    for (name, mut counter) in all_counters(cond) {
        counter.update(&[1], &[2]);
        let c = counter.implication_count();
        // Probabilistic counters may scale, but within a small constant.
        assert!((0.0..=4.0).contains(&c), "{name}: single-pair count {c}");
        assert!(counter.memory_entries() >= 1, "{name} must track something");
    }
}

#[test]
fn duplicates_do_not_inflate_counts() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    for (name, mut counter) in all_counters(cond) {
        for _ in 0..1000 {
            counter.update(&[7], &[8]);
        }
        let c = counter.implication_count();
        assert!((0.0..=4.0).contains(&c), "{name}: {c}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The exact counter agrees with an order-respecting reference
    /// evaluation on arbitrary small streams under arbitrary conditions.
    #[test]
    fn exact_counter_matches_reference(
        stream in proptest::collection::vec((0u64..20, 0u64..6), 1..400),
        k in 1u32..4,
        sigma in 1u64..6,
        psi_pct in 0u32..=100,
    ) {
        let cond = ImplicationConditions::builder()
            .max_multiplicity(k)
            .min_support(sigma)
            .top_confidence_ratio(k, psi_pct, 100)
            .build();
        let mut exact = ExactCounter::new(cond);
        for &(a, b) in &stream {
            exact.update(&[a], &[b]);
        }
        // Reference: replay each itemset's history through ItemState.
        use implicate::core::{ItemState, Verdict};
        use implicate::sketch::hash::{Hasher64, MixHasher};
        let h = MixHasher::new(0xe8ac_7ab1);
        let mut histories: std::collections::HashMap<u64, Vec<u64>> = Default::default();
        for &(a, b) in &stream {
            histories.entry(a).or_default().push(b);
        }
        let (mut sat, mut vio, mut sup) = (0u64, 0u64, 0u64);
        for bs in histories.values() {
            let mut st = ItemState::new();
            let mut last = Verdict::Pending;
            for &b in bs {
                last = st.update(h.hash_slice(&[b]), &cond);
            }
            match last {
                Verdict::Satisfies => sat += 1,
                Verdict::Violates => vio += 1,
                Verdict::Pending => {}
            }
            if st.support() >= sigma {
                sup += 1;
            }
        }
        prop_assert_eq!(exact.exact_implication_count(), sat);
        prop_assert_eq!(exact.exact_non_implication_count(), vio);
        prop_assert_eq!(exact.exact_f0_sup(), sup);
    }

    /// DS under its bound is exactly the exact counter, on any stream.
    #[test]
    fn ds_under_bound_is_exact(
        stream in proptest::collection::vec((0u64..50, 0u64..4), 1..300),
    ) {
        let cond = ImplicationConditions::one_to_c(2, 0.7, 2);
        let mut ds = DistinctSampling::new(cond, 10_000, 5);
        let mut exact = ExactCounter::new(cond);
        for &(a, b) in &stream {
            ds.update(&[a], &[b]);
            exact.update(&[a], &[b]);
        }
        prop_assert_eq!(ds.level(), 0);
        prop_assert_eq!(ds.implication_count(), exact.exact_implication_count() as f64);
        prop_assert_eq!(
            ds.non_implication_count(),
            Some(exact.exact_non_implication_count() as f64)
        );
    }

    /// The estimator never reports a negative count and never exceeds its
    /// F0^sup component.
    #[test]
    fn estimate_components_are_consistent(
        stream in proptest::collection::vec((0u64..1000, 0u64..8), 0..500),
    ) {
        let cond = ImplicationConditions::strict_one_to_one(1);
        let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(9).build();
        for &(a, b) in &stream {
            est.update(&[a], &[b]);
        }
        let e = est.estimate_now();
        prop_assert!(e.implication_count >= 0.0);
        prop_assert!(e.f0_sup >= 0.0);
        prop_assert!(e.non_implication_count >= 0.0);
        prop_assert!(e.implication_count <= e.f0_sup + 1e-9);
    }

    /// Update order of *distinct itemsets* does not change the exact
    /// verdict set (per-itemset histories are preserved).
    #[test]
    fn exact_counts_invariant_under_itemset_interleaving(
        histories in proptest::collection::vec(
            proptest::collection::vec(0u64..5, 1..12),
            1..12,
        ),
        seed in 0u64..1000,
    ) {
        let cond = ImplicationConditions::one_to_c(2, 0.6, 2);
        // Sequential layout.
        let mut seq = ExactCounter::new(cond);
        for (a, bs) in histories.iter().enumerate() {
            for &b in bs {
                seq.update(&[a as u64], &[b]);
            }
        }
        // Deterministically interleaved layout preserving per-a order.
        let mut cursors = vec![0usize; histories.len()];
        let mut inter = ExactCounter::new(cond);
        let mut rng = seed;
        loop {
            let pending: Vec<usize> = (0..histories.len())
                .filter(|&i| cursors[i] < histories[i].len())
                .collect();
            if pending.is_empty() {
                break;
            }
            rng = implicate::sketch::hash::mix64(rng);
            let i = pending[(rng % pending.len() as u64) as usize];
            inter.update(&[i as u64], &[histories[i][cursors[i]]]);
            cursors[i] += 1;
        }
        prop_assert_eq!(
            seq.exact_implication_count(),
            inter.exact_implication_count()
        );
        prop_assert_eq!(
            seq.exact_non_implication_count(),
            inter.exact_non_implication_count()
        );
        prop_assert_eq!(seq.exact_f0_sup(), inter.exact_f0_sup());
    }
}
