//! Proves the CLI's row-projection hot path is allocation-free: hashing
//! a text field (`implicate::text::hash_field`, the routine `implicate`'s
//! `project()` uses per column) must never touch the heap, and a whole
//! projected row must not allocate once its reusable buffer is warm.
//!
//! Isolated in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use implicate::sketch::hash::MixHasher;
use implicate::text::hash_field;

struct CountingAlloc;

thread_local! {
    /// Per-thread allocation count, so concurrent test threads and the
    /// harness itself cannot pollute a measurement.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// The CLI's projection, shape-for-shape: hash each selected field into
/// a reused output buffer.
fn project(fields: &[&str], cols: &[usize], hasher: &MixHasher, out: &mut Vec<u64>) -> bool {
    out.clear();
    for &c in cols {
        match fields.get(c) {
            Some(f) => out.push(hash_field(hasher, f)),
            None => return false,
        }
    }
    true
}

#[test]
fn projecting_a_row_performs_zero_allocations() {
    let hasher = MixHasher::new(0x00f1_e1d5);
    let fields = [
        "10.20.30.40",
        "https://example.com/a/rather/long/path?session=8f2e",
        "443",
        "",
        "x",
    ];
    let cols = [0usize, 1, 2, 3, 4];
    let mut out = Vec::with_capacity(cols.len());

    // Warm the buffer, then demand a perfectly quiet heap.
    assert!(project(&fields, &cols, &hasher, &mut out));
    let before = allocs_on_this_thread();
    let mut acc = 0u64;
    for _ in 0..10_000 {
        assert!(project(&fields, &cols, &hasher, &mut out));
        acc ^= out.iter().fold(0, |x, w| x ^ w);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "projection allocated on the hot path (fingerprint {acc:#x})"
    );
}

#[test]
fn hash_field_alone_is_allocation_free_for_any_length() {
    let hasher = MixHasher::new(7);
    let long = "f".repeat(4096);
    let before = allocs_on_this_thread();
    let mut acc = 0u64;
    for field in ["", "short", "exactly-8", &long] {
        for _ in 0..1_000 {
            acc = acc.wrapping_add(hash_field(&hasher, field));
        }
    }
    let after = allocs_on_this_thread();
    assert_eq!(after - before, 0, "hash_field allocated (acc {acc})");
}
