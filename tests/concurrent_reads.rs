//! The wait-free read contract: estimates observed through
//! [`EstimateReader`] are **bit-identical** to the owner's sequential
//! read-off at every published epoch — under single-writer publication,
//! across the sharded pipeline's quiesce points, and while concurrent
//! reader threads race a live writer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use implicate::{EstimatorConfig, ImplicationConditions, ShardedEstimator};
use proptest::prelude::*;

fn cond() -> ImplicationConditions {
    ImplicationConditions::one_to_c(2, 0.9, 2)
}

fn config() -> EstimatorConfig {
    EstimatorConfig::new(cond()).bitmaps(64).seed(17)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any stream and any publish cadence, a reader refreshed after
    /// each publish sees exactly the estimate the owner computes at that
    /// moment — the same `f64` bits, not an approximation.
    #[test]
    fn reader_matches_owner_bit_for_bit_at_every_epoch(
        stream in proptest::collection::vec((0u64..300, 0u64..6), 1..600),
        cadence in 1usize..64,
    ) {
        let mut est = config().build();
        let reader = est.reader();
        let mut epochs_seen = 0u64;
        for (i, &(a, b)) in stream.iter().enumerate() {
            est.update(&[a], &[b]);
            if i % cadence == 0 {
                let epoch = est.publish();
                prop_assert!(epoch > epochs_seen || epoch == epochs_seen + 1);
                epochs_seen = epoch;
                // Bit-identical, not approximately equal: Estimate's
                // PartialEq compares the raw f64 components.
                prop_assert_eq!(reader.estimate(), est.estimate_now());
                prop_assert_eq!(reader.tuples(), est.tuples_seen());
                prop_assert_eq!(reader.epoch(), epoch);
            }
        }
        est.publish();
        prop_assert_eq!(reader.estimate(), est.estimate_now());
        prop_assert_eq!(reader.support(), est.estimate_now().f0_sup);
    }

    /// A sharded pipeline publishing at a quiesce point (after `barrier`)
    /// serves the same bits as a sequential run over the same prefix, and
    /// the reassembled writer agrees byte-for-byte at the end.
    #[test]
    fn sharded_quiesce_publish_matches_sequential(
        stream in proptest::collection::vec((0u64..300, 0u64..6), 1..400),
        threads in 1usize..4,
    ) {
        let mut seq = config().build();
        for &(a, b) in &stream {
            seq.update(&[a], &[b]);
        }

        let mut sharded = ShardedEstimator::new(config().build(), threads);
        let reader = sharded.reader();
        for &(a, b) in &stream {
            sharded.update(&[a], &[b]);
        }
        sharded.barrier();
        sharded.publish();
        prop_assert_eq!(reader.estimate(), seq.estimate_now());
        prop_assert_eq!(reader.tuples(), seq.tuples_seen());

        let est = sharded.finish();
        prop_assert_eq!(est.to_bytes(), seq.to_bytes());
        // finish() republished the merged state on the same channel.
        prop_assert_eq!(reader.estimate(), est.estimate_now());
    }
}

/// Reader threads racing a live writer never observe a torn or stale-in-
/// the-wrong-way view: every `(epoch, estimate)` pair a reader sees must
/// be one the writer actually published, and epochs must be monotone per
/// reader.
#[test]
fn racing_readers_only_observe_published_pairs() {
    let mut est = config().build();
    let reader = est.reader();
    let published: Arc<Mutex<HashMap<u64, implicate::Estimate>>> =
        Arc::new(Mutex::new(HashMap::new()));
    published.lock().unwrap().insert(0, est.estimate_now());
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for _ in 0..3 {
        let reader = reader.clone();
        let published = Arc::clone(&published);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut last_epoch = 0u64;
            let mut observations = 0u64;
            while !stop.load(Ordering::Acquire) {
                // One view per observation: epoch and estimate come from
                // the same immutable published snapshot.
                let view = reader.view();
                let (epoch, estimate) = (view.epoch(), view.estimate());
                assert!(epoch >= last_epoch, "epoch went backwards");
                last_epoch = epoch;
                let table = published.lock().unwrap();
                let expect = table
                    .get(&epoch)
                    .unwrap_or_else(|| panic!("reader saw unpublished epoch {epoch}"));
                assert_eq!(
                    *expect, estimate,
                    "epoch {epoch}: reader bits differ from writer bits"
                );
                observations += 1;
            }
            observations
        }));
    }

    for i in 0..40_000u64 {
        let a = if i % 3 == 0 { i % 50 } else { i };
        est.update(&[a], &[a % 7]);
        if i % 512 == 0 {
            // Record the owner's bits *before* publishing so the table
            // always covers every epoch a reader can observe.
            let next = est.published_epoch().expect("channel exists") + 1;
            published.lock().unwrap().insert(next, est.estimate_now());
            let epoch = est.publish();
            assert_eq!(epoch, next);
        }
    }
    stop.store(true, Ordering::Release);
    let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total > 0, "readers never got to observe anything");
}

/// Readers keep following the publication channel as the writer moves
/// through the sharded pipeline and back (`new` → ingest → `finish`).
#[test]
fn readers_survive_the_sharded_round_trip() {
    let mut est = config().build();
    for i in 0..5_000u64 {
        est.update(&[i], &[i % 5]);
    }
    let reader = est.reader();
    assert_eq!(reader.tuples(), 5_000);

    let mut sharded = ShardedEstimator::new(est, 2);
    for i in 5_000..12_000u64 {
        sharded.update(&[i], &[i % 5]);
    }
    let mut est = sharded.finish();
    assert_eq!(reader.tuples(), 12_000, "finish republishes merged state");
    assert_eq!(reader.estimate(), est.estimate_now());

    est.update(&[999_999], &[1]);
    est.publish();
    assert_eq!(reader.tuples(), 12_001, "writer keeps the same channel");
    assert_eq!(reader.estimate(), est.estimate_now());
}
