//! End-to-end query scenarios: the Table 2 classes over the network
//! generator, plus incremental and sliding-window flows (§3.2).

use implicate::core::incremental::IncrementalCounter;
use implicate::core::sliding::SlidingEstimator;
use implicate::datagen::{NetworkSpec, NetworkStream};
use implicate::query::Filter;
use implicate::sketch::estimate::relative_error;
use implicate::stream::source::TupleSource;
use implicate::{
    EstimatorConfig, ExactCounter, Fringe, ImplicationConditions, ImplicationCounter,
    ImplicationQuery, Projector, QueryEngine, Tuple,
};

fn network(tuples: u64, seed: u64) -> (implicate::Schema, Vec<Tuple>) {
    let mut gen = NetworkStream::new(NetworkSpec {
        seed,
        ..Default::default()
    });
    let schema = gen.schema().clone();
    let data = (0..tuples).map(|_| gen.next_row()).collect();
    (schema, data)
}

#[test]
fn loyal_source_query_tracks_exact() {
    let (schema, tuples) = network(150_000, 1);
    let q = ImplicationQuery::one_to_one(
        schema.attr_set(&["Source"]),
        schema.attr_set(&["Destination"]),
        1,
    );
    let pl = Projector::new(&schema, q.lhs);
    let pr = Projector::new(&schema, q.rhs);
    let mut exact = ExactCounter::new(q.conditions);
    for t in &tuples {
        exact.update(pl.project(t).as_slice(), pr.project(t).as_slice());
    }
    let tuning = EstimatorConfig::new(q.conditions).seed(2);
    let mut engine = QueryEngine::new(&schema, q, tuning);
    for t in &tuples {
        engine.process(t);
    }
    let err = relative_error(exact.exact_implication_count() as f64, engine.answer());
    assert!(err < 0.30, "err {err}");
    assert!(exact.exact_implication_count() > 1000, "workload sanity");
}

#[test]
fn conditional_query_only_sees_matching_tuples() {
    let (schema, tuples) = network(50_000, 3);
    let time = schema.attr_expect("Time");
    let q = ImplicationQuery::one_to_one(
        schema.attr_set(&["Source"]),
        schema.attr_set(&["Destination"]),
        1,
    )
    .filtered(Filter::new().and_eq(time, 1));
    let tuning = EstimatorConfig::new(q.conditions).bitmaps(16).seed(4);
    let mut engine = QueryEngine::new(&schema, q, tuning);
    for t in &tuples {
        engine.process(t);
    }
    let expected: u64 = tuples.iter().filter(|t| t.get(time.index()) == 1).count() as u64;
    assert_eq!(engine.matched_tuples(), expected);
    assert!(expected > 0);
}

#[test]
fn incremental_counts_new_arrivals_between_marks() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    let mut inc = IncrementalCounter::new(EstimatorConfig::new(cond).seed(5).build());
    for a in 0..30_000u64 {
        inc.update(&[a], &[a]);
    }
    let t1 = inc.snapshot();
    for a in 30_000..60_000u64 {
        inc.update(&[a], &[a]);
    }
    let delta = inc.since(&t1);
    assert_eq!(delta.tuples, 30_000);
    let err = relative_error(30_000.0, delta.implication_count);
    assert!(err < 0.35, "incremental err {err}: {delta:?}");
}

#[test]
fn sliding_window_detects_episode_and_recovers() {
    // A DDoS-like burst of heavy fan-out destinations in the middle of the
    // stream must raise the windowed complement count and then fall away.
    // Background destinations see ~60 distinct sources per window; only
    // the episode victim exceeds the 100-source fan-out bound.
    let cond = ImplicationConditions::builder()
        .max_multiplicity(100)
        .min_support(1)
        .top_confidence(1, 0.0)
        .build();
    let tuning = EstimatorConfig::new(cond)
        .fringe(Fringe::Bounded(8))
        .seed(6);
    let mut sliding = SlidingEstimator::new(tuning, 30_000, 15_000);
    let mut results = Vec::new();
    for i in 0..150_000u64 {
        let (dst, src) = if (60_000..90_000).contains(&i) {
            (7u64, i) // one destination, a fresh source every tuple
        } else {
            (1000 + i % 500, implicate::sketch::hash::mix64(i) % 2_000)
        };
        if let Some(w) = sliding.update(&[dst], &[src]) {
            results.push((w.origin, w.estimate.non_implication_count));
        }
    }
    let peak = results
        .iter()
        .filter(|(o, _)| (45_000..90_000).contains(o))
        .map(|&(_, c)| c)
        .fold(0.0f64, f64::max);
    let calm_after = results
        .iter()
        .filter(|(o, _)| *o >= 105_000)
        .map(|&(_, c)| c)
        .fold(0.0f64, f64::max);
    assert!(peak >= 1.0, "episode must register: {results:?}");
    assert!(
        calm_after < peak,
        "window must retire the episode: peak {peak}, after {calm_after}"
    );
}

#[test]
fn distinct_count_query_over_generator() {
    let (schema, tuples) = network(80_000, 7);
    let q = ImplicationQuery::distinct_count(schema.attr_set(&["Source"]));
    let tuning = EstimatorConfig::new(q.conditions).seed(8);
    let mut engine = QueryEngine::new(&schema, q, tuning);
    let mut seen = std::collections::HashSet::new();
    let src_idx = schema.attr_expect("Source").index();
    for t in &tuples {
        engine.process(t);
        seen.insert(t.get(src_idx));
    }
    let err = relative_error(seen.len() as f64, engine.answer());
    assert!(err < 0.25, "distinct count err {err}");
}

#[test]
fn more_than_query_counts_scanners() {
    // Plant port-scanner-like sources with huge fan-out.
    let (schema, mut tuples) = network(60_000, 9);
    for scanner in 0..200u64 {
        for d in 0..25u64 {
            tuples.push(Tuple::from([900_000 + scanner, scanner * 31 + d, 0, 0]));
        }
    }
    let q = ImplicationQuery::more_than(
        schema.attr_set(&["Source"]),
        schema.attr_set(&["Destination"]),
        20,
        1,
    );
    let pl = Projector::new(&schema, q.lhs);
    let pr = Projector::new(&schema, q.rhs);
    let mut exact = ExactCounter::new(q.conditions);
    for t in &tuples {
        exact.update(pl.project(t).as_slice(), pr.project(t).as_slice());
    }
    let truth = exact.exact_non_implication_count() as f64;
    assert!(truth >= 200.0, "scanners plus heavy background: {truth}");
    let tuning = EstimatorConfig::new(q.conditions).seed(10);
    let mut engine = QueryEngine::new(&schema, q, tuning);
    for t in &tuples {
        engine.process(t);
    }
    let err = relative_error(truth, engine.answer());
    assert!(err < 0.35, "more-than err {err} (truth {truth})");
}
