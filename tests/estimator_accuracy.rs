//! Cross-crate accuracy contracts: the NIPS/CI estimator against the
//! exact counter on generated workloads, including one cell of each
//! figure-style experiment at reduced scale.

use implicate::datagen::{DatasetOne, DatasetOneSpec};
use implicate::sketch::estimate::relative_error;
use implicate::{EstimatorConfig, ExactCounter, Fringe, ImplicationCounter};

/// One Dataset One cell (Figure 4 point) at reduced scale: the estimator
/// must land within a generous multiple of the paper's ~10% target.
#[test]
fn dataset_one_cell_accuracy_c1() {
    let mut errs = Vec::new();
    for seed in 0..3u64 {
        let spec = DatasetOneSpec::paper(1_000, 500, 1, 100 + seed);
        let cond = spec.paper_conditions();
        let data = DatasetOne::generate(&spec);
        let mut exact = ExactCounter::new(cond);
        let mut est = EstimatorConfig::new(cond).seed(seed).build();
        for &(a, b) in &data.pairs {
            exact.update(&[a], &[b]);
            est.update(&[a], &[b]);
        }
        let truth = exact.exact_implication_count() as f64;
        assert!(
            (truth - 500.0).abs() < 25.0,
            "planted count should be recovered by the exact counter: {truth}"
        );
        errs.push(relative_error(truth, est.estimate_now().implication_count));
    }
    let mean = errs.iter().sum::<f64>() / errs.len() as f64;
    assert!(mean < 0.25, "mean error {mean} across {errs:?}");
}

#[test]
fn dataset_one_cell_accuracy_c4() {
    let spec = DatasetOneSpec::paper(500, 250, 4, 7);
    let cond = spec.paper_conditions();
    let data = DatasetOne::generate(&spec);
    let mut exact = ExactCounter::new(cond);
    let mut bounded = EstimatorConfig::new(cond).seed(3).build();
    let mut unbounded = EstimatorConfig::new(cond)
        .fringe(Fringe::Unbounded)
        .seed(3)
        .build();
    for &(a, b) in &data.pairs {
        exact.update(&[a], &[b]);
        bounded.update(&[a], &[b]);
        unbounded.update(&[a], &[b]);
    }
    let truth = exact.exact_implication_count() as f64;
    let eb = relative_error(truth, bounded.estimate_now().implication_count);
    let eu = relative_error(truth, unbounded.estimate_now().implication_count);
    assert!(eb < 0.35, "bounded err {eb}");
    assert!(eu < 0.35, "unbounded err {eu}");
    // Figures 4–6's headline: the two are close to each other.
    assert!(
        (bounded.estimate_now().implication_count - unbounded.estimate_now().implication_count)
            .abs()
            < 0.25 * truth.max(1.0),
        "bounded and unbounded fringe should roughly agree"
    );
}

/// The estimator's error must not blow up as the stream grows (the §5
/// contrast with relative-support schemes).
#[test]
fn error_is_stable_in_stream_length() {
    let cond = implicate::ImplicationConditions::strict_one_to_one(2);
    let mut exact = ExactCounter::new(cond);
    let mut est = EstimatorConfig::new(cond).seed(11).build();
    let mut errs = Vec::new();
    for wave in 0..5u64 {
        for i in 0..20_000u64 {
            let a = wave * 20_000 + i;
            let loyal = implicate::sketch::hash::mix64(a).is_multiple_of(2);
            est.update(&[a], &[0]);
            exact.update(&[a], &[0]);
            let b = if loyal { 0 } else { 1 };
            est.update(&[a], &[b]);
            exact.update(&[a], &[b]);
        }
        errs.push(relative_error(
            exact.exact_implication_count() as f64,
            est.estimate_now().implication_count,
        ));
    }
    for (i, e) in errs.iter().enumerate() {
        assert!(*e < 0.35, "wave {i}: error {e} ({errs:?})");
    }
}

/// Memory must stay flat while the stream and its cardinalities grow.
#[test]
fn estimator_memory_is_stream_independent() {
    let cond = implicate::ImplicationConditions::one_to_c(2, 0.8, 2);
    let mut est = EstimatorConfig::new(cond).seed(5).build();
    let mut peaks = Vec::new();
    for scale in [10_000u64, 100_000, 1_000_000] {
        while est.tuples_seen() < scale {
            let a = est.tuples_seen() / 2;
            est.update(&[a], &[a % 13]);
        }
        peaks.push(est.entries());
    }
    let max = *peaks.iter().max().unwrap();
    assert!(max <= 64 * 66, "peak entries {max}");
    // No growth trend across 100x stream growth.
    assert!(
        peaks[2] <= peaks[0].max(peaks[1]) * 3 + 64,
        "entries trend {peaks:?}"
    );
}

/// DS matches exact while under its bound, diverges gracefully above it.
#[test]
fn distinct_sampling_contract() {
    use implicate::DistinctSampling;
    let cond = implicate::ImplicationConditions::strict_one_to_one(1);
    let mut ds = DistinctSampling::new(cond, 1920, 9);
    let mut exact = ExactCounter::new(cond);
    for a in 0..1_500u64 {
        ds.update(&[a], &[a % 3]);
        exact.update(&[a], &[a % 3]);
    }
    assert_eq!(
        ds.implication_count(),
        exact.exact_implication_count() as f64,
        "under the bound DS is exact"
    );
    for a in 1_500..80_000u64 {
        ds.update(&[a], &[a % 3]);
        exact.update(&[a], &[a % 3]);
    }
    let err = relative_error(
        exact.exact_implication_count() as f64,
        ds.implication_count(),
    );
    assert!(err < 0.25, "DS err {err} on a uniform stream");
}
