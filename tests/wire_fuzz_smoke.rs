//! In-tree fuzz smoke for the wire decoder: a deterministic xorshift
//! mutation loop over valid seed frames, asserting the decoder never
//! panics on any input — only typed [`WireError`]s or valid replicas.
//!
//! Runs for about a second by default so it rides along with `cargo
//! test`; set `WIRE_FUZZ_SECS` for a longer campaign (nightly CI runs
//! the dedicated `cargo fuzz` target in `fuzz/` for ≥60 s, and this
//! smoke at 60 s as a fallback where nightly toolchains are
//! unavailable).

use std::time::{Duration, Instant};

use bytes::Bytes;
use implicate::core::wire::{decode_compat, peek_frame, WireDecoder, WireSnapshot};
use implicate::{EstimatorConfig, ImplicationConditions, MemoryBudget};

/// xorshift64* — tiny, deterministic, good enough to drive mutations.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Valid frames to mutate from: V3 full, V3 delta, empty-state full,
/// and a V2 snapshot for the compat path.
fn seed_corpus() -> Vec<Vec<u8>> {
    let cond = ImplicationConditions::one_to_c(2, 0.8, 3);
    let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(7).build();
    let empty = WireSnapshot::capture(&est, 1).full_frame(1);
    for i in 0..400u64 {
        est.update(&[i % 90], &[i % 6]);
    }
    let base = WireSnapshot::capture(&est, 2);
    for i in 0..200u64 {
        est.update(&[i % 120], &[i % 5]);
    }
    let tip = WireSnapshot::capture(&est, 3);
    vec![
        empty.to_vec(),
        base.full_frame(1).to_vec(),
        tip.delta_frame(&base, 1).to_vec(),
        est.to_bytes().to_vec(), // VERSION 2, for decode_compat
    ]
}

/// One decoder round over `bytes`: every decode entry point must return
/// (a panic anywhere fails the test).
fn exercise(bytes: &[u8]) {
    let _ = peek_frame(bytes);
    let frame = Bytes::from(bytes.to_vec());
    let mut decoder = WireDecoder::new().with_max_frame_bytes(1 << 20);
    let _ = decoder.apply(frame.slice(0..frame.len()));
    // A second application drives the delta-after-full state machine.
    let _ = decoder.apply(frame.slice(0..frame.len()));
    let mut tight = WireDecoder::new()
        .with_budget(MemoryBudget::with_limit(4096))
        .with_max_frame_bytes(1 << 16);
    let _ = tight.apply(frame.slice(0..frame.len()));
    let _ = decode_compat(frame);
}

#[test]
fn mutated_frames_never_panic_the_decoder() {
    let secs: u64 = std::env::var("WIRE_FUZZ_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let deadline = Instant::now() + Duration::from_secs(secs);
    let corpus = seed_corpus();
    let mut rng = XorShift(0x9e37_79b9_7f4a_7c15);
    let mut rounds = 0u64;
    while Instant::now() < deadline {
        let mut bytes = corpus[rng.below(corpus.len())].clone();
        match rng.below(4) {
            // Bit flips.
            0 => {
                for _ in 0..=rng.below(8) {
                    let at = rng.below(bytes.len());
                    bytes[at] ^= 1 << rng.below(8);
                }
            }
            // Truncate.
            1 => bytes.truncate(rng.below(bytes.len() + 1)),
            // Splice a window from another corpus entry.
            2 => {
                let donor = &corpus[rng.below(corpus.len())];
                let at = rng.below(bytes.len());
                let from = rng.below(donor.len());
                let n = rng.below(64).min(bytes.len() - at).min(donor.len() - from);
                bytes[at..at + n].copy_from_slice(&donor[from..from + n]);
            }
            // Replace with raw noise (keeps short inputs in the mix).
            _ => {
                bytes = (0..rng.below(512)).map(|_| rng.next() as u8).collect();
            }
        }
        exercise(&bytes);
        rounds += 1;
    }
    assert!(rounds > 0, "fuzz loop never ran");
}
