//! End-to-end observability tests: the metrics registry viewed through
//! the `implicate` facade, in both feature configurations. Every test
//! here must pass with `--no-default-features` too — CI runs both.

use implicate::{
    EstimatorConfig, Fringe, ImplicationConditions, MetricsRegistry, ShardedEstimator,
};

fn loyal_and_fickle(est: &mut implicate::ImplicationEstimator, n: u64) {
    for a in 0..n {
        est.update(&[a], &[1]);
        if a % 2 == 0 {
            est.update(&[a], &[2]); // second partner: violates K = 1
        }
    }
}

#[test]
fn estimator_counters_match_the_stream() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(9).build();
    loyal_and_fickle(&mut est, 1_000);

    let m = est.metrics();
    if MetricsRegistry::enabled() {
        // Exactly one tuple counted per update call.
        assert_eq!(m.estimator.tuples.get(), est.tuples_seen());
        assert_eq!(m.estimator.tuples.get(), 1_500);
        // Half the itemsets turned dirty, all via the multiplicity bound
        // (minus the Zone-1 fraction the bitmap never tracks).
        assert!(m.estimator.dirty_multiplicity.get() > 0);
        assert_eq!(m.estimator.dirty_confidence.get(), 0);
        assert_eq!(m.estimator.dirty_support_gate.get(), 0);
        assert!(m.estimator.dirty_total() <= 500);
        // The occupancy gauge telescopes entries_delta, so it must agree
        // with the estimator's own entry count at any quiescent point.
        assert_eq!(m.estimator.occupancy.get(), est.entries() as u64);
        assert!(m.estimator.occupancy.peak() >= m.estimator.occupancy.get());
        assert!(m.estimator.cells_committed.get() > 0);
    } else {
        assert_eq!(m.estimator.tuples.get(), 0);
        assert!(m.samples().is_empty());
    }
}

#[test]
fn fringe_pressure_shows_up_as_evictions() {
    let cond = ImplicationConditions::one_to_c(1, 0.8, 2);
    let mut est = EstimatorConfig::new(cond)
        .bitmaps(16)
        .fringe(Fringe::Bounded(2))
        .seed(3)
        .build();
    for a in 0..20_000u64 {
        est.update(&[a], &[a % 7]);
    }
    if MetricsRegistry::enabled() {
        assert!(
            est.metrics().estimator.fringe_evictions.get() > 0,
            "20k distinct itemsets through fringe 2 must shed"
        );
        assert_eq!(
            est.metrics().estimator.occupancy.get(),
            est.entries() as u64
        );
    }
}

#[test]
fn sharded_ingestion_shares_one_registry() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    let est = EstimatorConfig::new(cond).bitmaps(32).seed(5).build();
    let mut sharded = ShardedEstimator::new(est, 3);
    let hasher = sharded.pair_hasher();
    let pairs: Vec<(u64, u64)> = (0..10_000u64)
        .map(|a| hasher.hash_pair(&[a % 2_000], &[a % 3]))
        .collect();
    sharded.update_hashed_batch(&pairs);
    // Partial per-shard batches are still pending here; finish() flushes.
    let routed_before_finish = sharded.metrics().ingest.updates_routed.get();
    let est = sharded.finish();

    let m = est.metrics();
    if MetricsRegistry::enabled() {
        // The finished estimator holds the same registry the shards and
        // the router wrote to — ingest counters survive the merge.
        assert!(routed_before_finish <= 10_000);
        assert_eq!(m.ingest.updates_routed.get(), 10_000);
        assert_eq!(m.ingest.shards.get(), 3);
        assert!(m.ingest.batches_routed.get() > 0);
        // Shard workers recorded their updates into the shared estimator
        // family: every routed pair became a counted tuple.
        assert_eq!(m.estimator.tuples.get(), 10_000);
        assert!(m.estimator.merges.get() >= 3, "finish merges the shards");
    } else {
        assert_eq!(m.ingest.updates_routed.get(), 0);
        assert_eq!(routed_before_finish, 0);
    }
}

#[test]
fn snapshot_metrics_count_bytes_and_calls() {
    let cond = ImplicationConditions::one_to_c(2, 0.8, 2);
    let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(11).build();
    loyal_and_fickle(&mut est, 2_000);

    let bytes = est.to_bytes();
    let restored = implicate::ImplicationEstimator::from_bytes(bytes.clone()).expect("restore");

    if MetricsRegistry::enabled() {
        let s = &est.metrics().snapshot;
        assert_eq!(s.encodes.get(), 1);
        assert_eq!(s.bytes_written.get(), bytes.len() as u64);
        assert_eq!(s.encode_nanos.count(), 1);
        // The restored estimator gets a *fresh* registry: decode-side
        // counters live there, and the original's are untouched.
        assert_eq!(s.decodes.get(), 0);
        let r = &restored.metrics().snapshot;
        assert_eq!(r.decodes.get(), 1);
        assert_eq!(r.bytes_read.get(), bytes.len() as u64);
        assert_eq!(r.decode_nanos.count(), 1);
        assert!(!est.metrics().same_registry(restored.metrics()));
    } else {
        assert_eq!(est.metrics().snapshot.encodes.get(), 0);
    }
}

#[test]
fn prometheus_exposition_round_trips_every_sample() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(7).build();
    loyal_and_fickle(&mut est, 500);
    let m = est.metrics();
    let text = m.prometheus("implicate");

    if !MetricsRegistry::enabled() {
        assert!(text.contains("compiled out"));
        return;
    }

    // Parse the text exposition back: `# HELP <name> <text>` then
    // `# TYPE <name> <kind>` then `<name> <value>`, nothing else.
    let mut parsed = Vec::new();
    let mut lines = text.lines().peekable();
    while let Some(line) = lines.next() {
        let help = line
            .strip_prefix("# HELP ")
            .unwrap_or_else(|| panic!("expected HELP line, got {line:?}"));
        let (hname, htext) = help.split_once(' ').expect("HELP line has name + text");
        assert!(!htext.trim().is_empty(), "empty HELP text for {hname}");
        let tline = lines.next().expect("TYPE line after HELP");
        let meta = tline
            .strip_prefix("# TYPE ")
            .unwrap_or_else(|| panic!("unexpected line {tline:?}"));
        let (name, kind) = meta.split_once(' ').expect("TYPE line has name + kind");
        assert_eq!(name, hname, "HELP and TYPE name must agree");
        assert!(matches!(kind, "counter" | "gauge"), "kind {kind:?}");
        let sample = lines.next().expect("sample line after TYPE");
        let (sname, value) = sample.split_once(' ').expect("sample has name + value");
        assert_eq!(sname, name, "TYPE and sample name must agree");
        parsed.push((name.to_owned(), value.parse::<u64>().expect("int value")));
    }

    // Every registry sample survives the round trip, value intact, under
    // its flattened name (dots and dashes become underscores) — and the
    // in-tree exposition linter agrees on the sample count.
    let samples = m.samples();
    assert_eq!(parsed.len(), samples.len());
    assert_eq!(implicate::lint_prometheus(&text), Ok(samples.len()));
    for ((flat, got), (name, want)) in parsed.iter().zip(&samples) {
        let expect_flat: String = format!("implicate_{name}")
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        assert_eq!(flat, &expect_flat);
        assert_eq!(got, want, "{name}");
    }
}

#[test]
fn disabled_build_is_inert_but_api_complete() {
    // Compile-time contract: the whole surface exists in both configs;
    // with the feature off everything reads zero and renders the
    // compiled-out sentinels.
    let cond = ImplicationConditions::strict_one_to_one(1);
    let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(1).build();
    loyal_and_fickle(&mut est, 100);
    let m = est.metrics();
    let report = m.report();
    let line = m.line_protocol("implicate");
    if MetricsRegistry::enabled() {
        assert!(report.starts_with("metrics:"));
        assert!(line.starts_with("implicate estimator.tuples="));
    } else {
        assert!(report.contains("compiled out"));
        assert_eq!(line, "implicate metrics_enabled=false");
        assert_eq!(m.samples(), Vec::new());
        assert_eq!(m.estimator.dirty_total(), 0);
    }
}
