//! Determinism contract of the sharded ingestion pipeline: for every
//! thread count, [`ShardedEstimator`] must be indistinguishable from a
//! sequential pass — the estimate, the tuple accounting, *and* the
//! snapshot bytes. This is the property that lets `--threads N` replace
//! `--threads 1` in any deployment, checkpoints included.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use implicate::datagen::Zipf;
use implicate::{EstimatorConfig, Fringe, ImplicationConditions, ShardedEstimator};

/// 100k-pair zipf workload: skewed sources over a skewed destination
/// pool, with enough repeat traffic to exercise multiplicity tracking,
/// fringe promotion, and support certification together.
fn zipf_stream(n: usize, seed: u64) -> Vec<([u64; 1], [u64; 1])> {
    let sources = Zipf::new(20_000, 1.2);
    let dests = Zipf::new(500, 1.5);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let a = sources.sample(&mut rng);
            // Mostly loyal: a source's home destination is a function of
            // the source; one in six updates strays to a hot destination.
            let b = if rng.gen::<f64>() < 1.0 / 6.0 {
                dests.sample(&mut rng)
            } else {
                a % 977
            };
            ([a], [b])
        })
        .collect()
}

fn configs() -> Vec<EstimatorConfig> {
    let one_to_c = ImplicationConditions::one_to_c(3, 0.8, 2);
    let strict = ImplicationConditions::strict_one_to_one(1);
    vec![
        EstimatorConfig::new(one_to_c).seed(42),
        EstimatorConfig::new(strict).bitmaps(32).seed(7),
        EstimatorConfig::new(one_to_c)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(9),
    ]
}

#[test]
fn sharded_ingestion_is_bit_identical_for_every_thread_count() {
    let stream = zipf_stream(100_000, 0xdead);
    for config in configs() {
        let mut seq = config.build();
        for (a, b) in &stream {
            seq.update(a, b);
        }
        let (seq_estimate, seq_bytes) = (seq.estimate_now(), seq.to_bytes());

        for threads in [1usize, 2, 4, 8] {
            let mut sharded = ShardedEstimator::new(config.build(), threads);
            for (a, b) in &stream {
                sharded.update(a, b);
            }
            let par = sharded.finish();
            assert_eq!(
                par.estimate_now(),
                seq_estimate,
                "estimate diverged at {threads} threads ({config:?})"
            );
            assert_eq!(
                par.tuples_seen(),
                seq.tuples_seen(),
                "tuple count diverged at {threads} threads"
            );
            assert_eq!(
                par.to_bytes(),
                seq_bytes,
                "snapshot bytes diverged at {threads} threads ({config:?})"
            );
        }
    }
}

#[test]
fn batched_entry_point_is_equally_deterministic() {
    let stream = zipf_stream(40_000, 0xbeef);
    let pairs: Vec<(u64, u64)> = stream.iter().map(|&([a], [b])| (a, b)).collect();
    let config = EstimatorConfig::new(ImplicationConditions::one_to_c(2, 0.9, 2)).seed(3);

    let mut seq = config.build();
    seq.update_batch(&pairs);
    let seq_bytes = seq.to_bytes();

    for threads in [2usize, 8] {
        let mut sharded = ShardedEstimator::new(config.build(), threads);
        for chunk in pairs.chunks(777) {
            sharded.update_batch(chunk);
        }
        assert_eq!(
            sharded.finish().to_bytes(),
            seq_bytes,
            "update_batch diverged at {threads} threads"
        );
    }
}
