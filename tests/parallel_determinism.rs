//! Determinism contract of the sharded ingestion pipeline: for every
//! thread count, [`ShardedEstimator`] must be indistinguishable from a
//! sequential pass — the estimate, the tuple accounting, *and* the
//! snapshot bytes. This is the property that lets `--threads N` replace
//! `--threads 1` in any deployment, checkpoints included.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use implicate::datagen::Zipf;
use implicate::{EstimatorConfig, Fringe, ImplicationConditions, ShardedEstimator};

/// 100k-pair zipf workload: skewed sources over a skewed destination
/// pool, with enough repeat traffic to exercise multiplicity tracking,
/// fringe promotion, and support certification together.
fn zipf_stream(n: usize, seed: u64) -> Vec<([u64; 1], [u64; 1])> {
    let sources = Zipf::new(20_000, 1.2);
    let dests = Zipf::new(500, 1.5);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let a = sources.sample(&mut rng);
            // Mostly loyal: a source's home destination is a function of
            // the source; one in six updates strays to a hot destination.
            let b = if rng.gen::<f64>() < 1.0 / 6.0 {
                dests.sample(&mut rng)
            } else {
                a % 977
            };
            ([a], [b])
        })
        .collect()
}

fn configs() -> Vec<EstimatorConfig> {
    let one_to_c = ImplicationConditions::one_to_c(3, 0.8, 2);
    let strict = ImplicationConditions::strict_one_to_one(1);
    vec![
        EstimatorConfig::new(one_to_c).seed(42),
        EstimatorConfig::new(strict).bitmaps(32).seed(7),
        EstimatorConfig::new(one_to_c)
            .bitmaps(16)
            .fringe(Fringe::Unbounded)
            .seed(9),
    ]
}

#[test]
fn sharded_ingestion_is_bit_identical_for_every_thread_count() {
    let stream = zipf_stream(100_000, 0xdead);
    for config in configs() {
        let mut seq = config.build();
        for (a, b) in &stream {
            seq.update(a, b);
        }
        let (seq_estimate, seq_bytes) = (seq.estimate_now(), seq.to_bytes());

        for threads in [1usize, 2, 4, 8] {
            let mut sharded = ShardedEstimator::new(config.build(), threads);
            for (a, b) in &stream {
                sharded.update(a, b);
            }
            let par = sharded.finish();
            assert_eq!(
                par.estimate_now(),
                seq_estimate,
                "estimate diverged at {threads} threads ({config:?})"
            );
            assert_eq!(
                par.tuples_seen(),
                seq.tuples_seen(),
                "tuple count diverged at {threads} threads"
            );
            assert_eq!(
                par.to_bytes(),
                seq_bytes,
                "snapshot bytes diverged at {threads} threads ({config:?})"
            );
        }
    }
}

/// Routes `stream` through a sharded pipeline pre-hashed and split into
/// the given batch sizes (the columnar spine's shape: hash once, ship
/// whole batches), with whatever the splits left over riding one final
/// batch, and returns the final snapshot bytes.
fn sharded_bytes(
    config: &EstimatorConfig,
    stream: &[([u64; 1], [u64; 1])],
    splits: &[usize],
    threads: usize,
) -> Vec<u8> {
    let mut sharded = ShardedEstimator::new(config.build(), threads);
    let hasher = sharded.pair_hasher();
    let mut hashed = Vec::new();
    let mut at = 0usize;
    for &want in splits {
        let take = want.min(stream.len() - at);
        hashed.clear();
        hashed.extend(
            stream[at..at + take]
                .iter()
                .map(|([a], [b])| hasher.hash_pair(&[*a], &[*b])),
        );
        sharded.update_hashed_batch(&hashed);
        at += take;
    }
    hashed.clear();
    hashed.extend(
        stream[at..]
            .iter()
            .map(|([a], [b])| hasher.hash_pair(&[*a], &[*b])),
    );
    sharded.update_hashed_batch(&hashed);
    sharded.finish().to_bytes().to_vec()
}

#[test]
fn grouped_batch_update_is_bit_identical_to_per_row() {
    // Pins the counting-sort grouped path directly (sharded lanes ship
    // 1024-row buffers, which fall below the grouping threshold): one
    // call far above the threshold, plus chunk sizes straddling it,
    // must all match the per-row loop bit for bit.
    let stream = zipf_stream(30_000, 0x9e37);
    let config = EstimatorConfig::new(ImplicationConditions::one_to_c(2, 0.9, 2)).seed(7);

    let mut seq = config.build();
    for (a, b) in &stream {
        seq.update(a, b);
    }
    let seq_bytes = seq.to_bytes().to_vec();

    for chunk in [1024usize, 2048, 4096, 30_000] {
        let mut batched = config.build();
        let hashed: Vec<(u64, u64)> = stream
            .iter()
            .map(|([a], [b])| batched.hash_pair(&[*a], &[*b]))
            .collect();
        for part in hashed.chunks(chunk) {
            batched.update_hashed_batch(part);
        }
        assert_eq!(
            batched.to_bytes().to_vec(),
            seq_bytes,
            "batch chunk {chunk} diverged from the per-row loop"
        );
    }
}

#[test]
fn edge_batch_sizes_are_bit_identical_too() {
    // Empty batches (a no-op ship), single-pair batches, and one batch
    // larger than a whole lane's forward ring can absorb (RING_DEPTH ×
    // the router's internal buffer — forcing backpressure and buffer
    // recycling mid-batch) must all reduce to the same per-bitmap
    // routed subsequences.
    let stream = zipf_stream(30_000, 0xfeed);
    let config = EstimatorConfig::new(ImplicationConditions::one_to_c(2, 0.9, 2)).seed(21);
    let mut seq = config.build();
    for (a, b) in &stream {
        seq.update(a, b);
    }
    let seq_bytes = seq.to_bytes().to_vec();

    let edge_splits: [&[usize]; 3] = [&[0], &[1, 0, 1, 1], &[17_000, 0, 9_001]];
    for threads in [1usize, 3, 8] {
        for splits in edge_splits {
            assert_eq!(
                sharded_bytes(&config, &stream, splits, threads),
                seq_bytes,
                "splits {splits:?} diverged at {threads} threads"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any batch partitioning of any stream, at any thread count, is
    /// unobservable: the ring handoff and the router's buffering never
    /// leak into the final snapshot bytes.
    #[test]
    fn any_batching_any_thread_count_is_bit_identical(
        splits in proptest::collection::vec(0usize..2_000, 1..12),
        threads in 1usize..=6,
        seed in 0u64..1_000,
    ) {
        let stream = zipf_stream(12_000, seed);
        let config =
            EstimatorConfig::new(ImplicationConditions::one_to_c(2, 0.9, 2)).seed(seed ^ 0xab);
        let mut seq = config.build();
        for (a, b) in &stream {
            seq.update(a, b);
        }
        prop_assert_eq!(
            sharded_bytes(&config, &stream, &splits, threads),
            seq.to_bytes().to_vec(),
            "splits {:?} diverged at {} threads",
            splits,
            threads
        );
    }
}

#[test]
fn batched_entry_point_is_equally_deterministic() {
    let stream = zipf_stream(40_000, 0xbeef);
    let pairs: Vec<(u64, u64)> = stream.iter().map(|&([a], [b])| (a, b)).collect();
    let config = EstimatorConfig::new(ImplicationConditions::one_to_c(2, 0.9, 2)).seed(3);

    let mut seq = config.build();
    seq.update_batch(&pairs);
    let seq_bytes = seq.to_bytes();

    for threads in [2usize, 8] {
        let mut sharded = ShardedEstimator::new(config.build(), threads);
        for chunk in pairs.chunks(777) {
            sharded.update_batch(chunk);
        }
        assert_eq!(
            sharded.finish().to_bytes(),
            seq_bytes,
            "update_batch diverged at {threads} threads"
        );
    }
}
