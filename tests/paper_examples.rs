//! Every worked number in the paper's §1 and §3, checked end-to-end
//! through the umbrella crate's public API.

use implicate::stream::toy;
use implicate::{
    ExactCounter, ImplicationConditions, ImplicationCounter, MultiplicityPolicy, Projector,
};

fn run_exact(cond: ImplicationConditions, lhs: &[&str], rhs: &[&str]) -> ExactCounter {
    let (schema, tuples, _) = toy::network_traffic();
    let pl = Projector::new(&schema, schema.attr_set(lhs));
    let pr = Projector::new(&schema, schema.attr_set(rhs));
    let mut c = ExactCounter::new(cond);
    for t in &tuples {
        c.update(pl.project(t).as_slice(), pr.project(t).as_slice());
    }
    c
}

#[test]
fn section1_destinations_with_single_source() {
    // "D2 → S1 and D1 → S2 have the implication property … the returned
    // implication count is two."
    let c = run_exact(
        ImplicationConditions::strict_one_to_one(1),
        &["Destination"],
        &["Source"],
    );
    assert_eq!(c.exact_implication_count(), 2);
}

#[test]
fn section1_destinations_with_single_source_80_percent() {
    // "destinations that 80% of the time are contacted by one single
    // source: in that case D3 qualifies and the returned count is three."
    let c = run_exact(
        ImplicationConditions::one_to_c(1, 0.80, 1).with_policy(MultiplicityPolicy::TrackTop),
        &["Destination"],
        &["Source"],
    );
    assert_eq!(c.exact_implication_count(), 3);
}

#[test]
fn section1_services_from_single_source() {
    // "how many services are being requested from only one source: the
    // returned aggregate is again two (WWW → S1, FTP → S2)."
    let c = run_exact(
        ImplicationConditions::strict_one_to_one(1),
        &["Service"],
        &["Source"],
    );
    assert_eq!(c.exact_implication_count(), 2);
}

#[test]
fn section312_services_at_most_two_sources() {
    // K = 5, σ = 1, ψ2 ≥ 80%: WWW and FTP participate, P2P (ψ2 = 75%)
    // does not → count 2.
    let cond = ImplicationConditions::builder()
        .max_multiplicity(5)
        .min_support(1)
        .top_confidence(2, 0.80)
        .build();
    let c = run_exact(cond, &["Service"], &["Source"]);
    assert_eq!(c.exact_implication_count(), 2);
}

#[test]
fn section312_relaxed_to_75_percent_admits_p2p() {
    // "If we change the minimum top-confidence level to 75% then P2P is
    // valid and participates in the count."
    let cond = ImplicationConditions::builder()
        .max_multiplicity(5)
        .min_support(1)
        .top_confidence(2, 0.75)
        .build();
    let c = run_exact(cond, &["Service"], &["Source"]);
    assert_eq!(c.exact_implication_count(), 3);
}

#[test]
fn section312_support_two_drops_ftp() {
    // "if the user increases the minimum support to two tuples then the
    // pair (FTP, S2) is not valid since it appears in only one tuple."
    let cond = ImplicationConditions::builder()
        .max_multiplicity(5)
        .min_support(2)
        .top_confidence(2, 0.75)
        .build();
    let c = run_exact(cond, &["Service"], &["Source"]);
    // WWW (2 tuples) and P2P (4 tuples, ψ2 = 75%) remain.
    assert_eq!(c.exact_implication_count(), 2);
}

#[test]
fn section31_multiplicity_and_support_of_s1_d3() {
    // (S1, D3) has support 4 and multiplicity 2 w.r.t. Service.
    let (schema, tuples, dicts) = toy::network_traffic();
    let pa = Projector::new(&schema, schema.attr_set(&["Source", "Destination"]));
    let pb = Projector::new(&schema, schema.attr_set(&["Service"]));
    let s1 = dicts.attr(0).code("S1").unwrap();
    let d3 = dicts.attr(1).code("D3").unwrap();
    let mut support = 0u64;
    let mut partners = std::collections::HashSet::new();
    for t in &tuples {
        if pa.project(t).as_slice() == [s1, d3] {
            support += 1;
            partners.insert(pb.project(t));
        }
    }
    assert_eq!(support, 4);
    assert_eq!(partners.len(), 2);
}

#[test]
fn section31_compound_cardinality() {
    // ‖{Source, Destination}‖ = 3 × 3 = 9.
    let (schema, _, _) = toy::network_traffic();
    let a = schema.attr_set(&["Source", "Destination"]);
    assert_eq!(schema.compound_cardinality(a), Some(9));
}
