//! End-to-end tests of the `implicate` command-line binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_implicate"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn implicate");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

/// A stream with `loyal` single-destination sources and `fickle`
/// two-destination sources.
fn traffic(loyal: u64, fickle: u64) -> String {
    let mut s = String::new();
    for a in 0..loyal {
        s.push_str(&format!("src{a} dst{a}\n"));
    }
    for a in 0..fickle {
        s.push_str(&format!("fsrc{a} dstA\nfsrc{a} dstB\n"));
    }
    s
}

#[test]
fn counts_loyal_sources_from_stdin() {
    let (stdout, stderr, ok) = run_cli(&["--lhs", "0", "--rhs", "1"], &traffic(4000, 4000));
    assert!(ok, "stderr: {stderr}");
    let answer: f64 = stdout.trim().parse().expect("numeric answer");
    assert!(
        (2000.0..7000.0).contains(&answer),
        "answer {answer} implausible for 4000 loyal sources"
    );
    assert!(stderr.contains("rows 12000"), "stderr: {stderr}");
}

#[test]
fn complement_flag_reports_nonimplications() {
    let (stdout, stderr, ok) = run_cli(
        &["--lhs", "0", "--rhs", "1", "--complement"],
        &traffic(4000, 4000),
    );
    assert!(ok, "stderr: {stderr}");
    let answer: f64 = stdout.trim().parse().expect("numeric answer");
    assert!(
        (2000.0..7000.0).contains(&answer),
        "complement {answer} implausible for 4000 fickle sources"
    );
}

#[test]
fn csv_delimiter_and_comments() {
    let input = "# header comment\nS1,D2\nS2,D1\n\nS1,D2\n";
    let (_, stderr, ok) = run_cli(&["--lhs", "0", "--rhs", "1", "--delimiter", ","], input);
    assert!(ok);
    assert!(stderr.contains("rows 3"), "stderr: {stderr}");
}

#[test]
fn short_rows_are_skipped_not_fatal() {
    let input = "a b\nonly-one-field\nc d\n";
    let (_, stderr, ok) = run_cli(&["--lhs", "0", "--rhs", "1"], input);
    assert!(ok);
    assert!(stderr.contains("skipped 1"), "stderr: {stderr}");
}

#[test]
fn save_and_resume_roundtrip() {
    let dir = std::env::temp_dir().join(format!("implicate-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let snap = dir.join("state.imps");
    let snap_s = snap.to_str().expect("utf-8 path");

    let (_, stderr1, ok1) = run_cli(
        &["--lhs", "0", "--rhs", "1", "--save", snap_s],
        &traffic(2000, 0),
    );
    assert!(ok1, "stderr: {stderr1}");
    assert!(stderr1.contains("snapshot: wrote"), "stderr: {stderr1}");

    // Resume and feed the second half; the estimate must reflect both.
    let more: String = (2000..4000u64)
        .map(|a| format!("src{a} dst{a}\n"))
        .collect();
    let (stdout2, stderr2, ok2) = run_cli(&["--lhs", "0", "--rhs", "1", "--resume", snap_s], &more);
    assert!(ok2, "stderr: {stderr2}");
    let answer: f64 = stdout2.trim().parse().expect("numeric answer");
    assert!(
        (2500.0..6000.0).contains(&answer),
        "resumed answer {answer} should reflect all 4000 sources"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_flag_prints_metrics_report() {
    let (_, stderr, ok) = run_cli(
        &["--lhs", "0", "--rhs", "1", "--stats"],
        &traffic(1000, 500),
    );
    assert!(ok, "stderr: {stderr}");
    if cfg!(feature = "metrics") {
        assert!(stderr.contains("metrics:"), "stderr: {stderr}");
        // 1000 loyal + 500 fickle × 2 rows = 2000 tuples, exactly.
        let tuples = stderr
            .lines()
            .find_map(|l| {
                let mut it = l.split_whitespace();
                (it.next() == Some("estimator.tuples")).then(|| it.next())
            })
            .flatten()
            .and_then(|v| v.parse::<u64>().ok())
            .expect("estimator.tuples line");
        assert_eq!(tuples, 2000, "stderr: {stderr}");
        // The report covers all three metric families.
        for name in [
            "estimator.dirty_multiplicity",
            "ingest.shards",
            "snapshot.encodes",
        ] {
            assert!(stderr.contains(name), "missing {name}: {stderr}");
        }
    } else {
        assert!(stderr.contains("compiled out"), "stderr: {stderr}");
    }
}

#[test]
fn stats_interval_emits_line_protocol() {
    let (_, stderr, ok) = run_cli(
        &["--lhs", "0", "--rhs", "1", "--stats-interval", "1000"],
        &traffic(2000, 0),
    );
    assert!(ok, "stderr: {stderr}");
    let lines: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("implicate "))
        .collect();
    assert_eq!(lines.len(), 2, "stderr: {stderr}");
    if cfg!(feature = "metrics") {
        assert!(
            lines[0].contains("estimator.tuples=1000i"),
            "first sample: {}",
            lines[0]
        );
        assert!(
            lines[1].contains("estimator.tuples=2000i"),
            "second sample: {}",
            lines[1]
        );
    } else {
        assert!(lines[0].contains("metrics_enabled=false"), "{}", lines[0]);
    }
}

#[test]
fn stats_with_parallel_ingestion_reports_shards() {
    let (_, stderr, ok) = run_cli(
        &["--lhs", "0", "--rhs", "1", "--threads", "2", "--stats"],
        &traffic(3000, 0),
    );
    assert!(ok, "stderr: {stderr}");
    if cfg!(feature = "metrics") {
        let shards = stderr
            .lines()
            .find_map(|l| {
                let mut it = l.split_whitespace();
                (it.next() == Some("ingest.shards")).then(|| it.next())
            })
            .flatten()
            .and_then(|v| v.parse::<u64>().ok())
            .expect("ingest.shards line");
        assert_eq!(shards, 2, "stderr: {stderr}");
        assert!(stderr.contains("ingest.shard0.batches"), "stderr: {stderr}");
    } else {
        assert!(stderr.contains("compiled out"), "stderr: {stderr}");
    }
}

#[test]
fn parallel_stats_interval_publishes_a_view_without_stalling_lanes() {
    // Interval emissions under --threads N read the epoch-published view
    // instead of barriering the shards: each emission publishes a fresh
    // view (view.publishes advances, view.epoch / view.published_tuples /
    // view.age_rows gauges appear) and the published tuple count is a
    // valid prefix — never more than the routed stream, with any lag
    // accounted for in view.age_rows.
    let (_, stderr, ok) = run_cli(
        &[
            "--lhs",
            "0",
            "--rhs",
            "1",
            "--threads",
            "2",
            "--stats-interval",
            "1000",
        ],
        &traffic(2000, 0),
    );
    assert!(ok, "stderr: {stderr}");
    let lines: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("implicate "))
        .collect();
    assert!(!lines.is_empty(), "stderr: {stderr}");
    if cfg!(feature = "metrics") {
        let emission = lines[0];
        let field = |name: &str| -> u64 {
            emission
                .split([' ', ','])
                .find_map(|kv| kv.strip_prefix(&format!("{name}=")))
                .and_then(|v| v.trim_end_matches('i').parse::<u64>().ok())
                .unwrap_or_else(|| panic!("no {name} in emission: {emission}"))
        };
        assert!(field("view.publishes") >= 1, "no publish: {emission}");
        let published = field("view.published_tuples");
        let age = field("view.age_rows");
        assert!(published <= 2000, "published beyond stream: {emission}");
        assert_eq!(
            published + age,
            2000,
            "published + lag must cover every routed row: {emission}"
        );
        // The final answer still reflects every row.
        assert!(stderr.contains("rows 2000"), "stderr: {stderr}");
    } else {
        assert!(lines[0].contains("metrics_enabled=false"), "{}", lines[0]);
    }
}

#[test]
fn stats_format_prom_emits_parseable_exposition() {
    let (_, stderr, ok) = run_cli(
        &[
            "--lhs",
            "0",
            "--rhs",
            "1",
            "--stats-interval",
            "1000",
            "--stats-format",
            "prom",
        ],
        &traffic(1000, 0),
    );
    assert!(ok, "stderr: {stderr}");
    if cfg!(feature = "metrics") {
        // Round-trip the exposition: every `# TYPE` line is followed by a
        // sample line for the same flattened metric name.
        let lines: Vec<&str> = stderr
            .lines()
            .filter(|l| l.starts_with("# TYPE ") || l.starts_with("implicate_"))
            .collect();
        assert!(!lines.is_empty(), "stderr: {stderr}");
        let mut samples = 0;
        for pair in lines.chunks(2) {
            let [ty, sample] = pair else {
                panic!("dangling TYPE line: {pair:?}")
            };
            let name = ty
                .strip_prefix("# TYPE ")
                .unwrap()
                .split(' ')
                .next()
                .unwrap();
            assert!(
                sample.starts_with(&format!("{name} ")),
                "sample {sample:?} does not match {ty:?}"
            );
            samples += 1;
        }
        assert!(samples > 5, "stderr: {stderr}");
        assert!(
            stderr.contains("\nimplicate_estimator_tuples 1000\n"),
            "stderr: {stderr}"
        );
    } else {
        assert!(stderr.contains("metrics compiled out"), "stderr: {stderr}");
    }
}

#[test]
fn trace_out_writes_jsonl_journal() {
    let dir = std::env::temp_dir().join(format!("implicate-trace-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("events.jsonl");
    let path_s = path.to_str().expect("utf-8 path");

    let (_, stderr, ok) = run_cli(
        &["--lhs", "0", "--rhs", "1", "--trace-out", path_s],
        &traffic(500, 500),
    );
    assert!(ok, "stderr: {stderr}");
    assert!(stderr.contains("trace: wrote"), "stderr: {stderr}");
    let jsonl = std::fs::read_to_string(&path).expect("trace file written");
    let summary = jsonl.lines().last().expect("summary line");
    assert!(
        summary.contains("\"event\":\"journal_summary\""),
        "{summary}"
    );
    if cfg!(feature = "trace") {
        assert!(summary.contains("\"enabled\":true"), "{summary}");
        // 500 fickle sources each turn dirty once: events must be present.
        assert!(jsonl.contains("\"event\":\"dirty\""), "no dirty events");
        assert!(
            jsonl.lines().count() > 100,
            "suspiciously few events:\n{summary}"
        );
    } else {
        assert!(summary.contains("\"enabled\":false"), "{summary}");
        assert_eq!(jsonl.lines().count(), 1, "summary only when compiled out");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn audit_reports_error_trajectory_and_summary() {
    let (_, stderr, ok) = run_cli(
        &["--lhs", "0", "--rhs", "1", "--audit", "1000"],
        &traffic(2000, 0),
    );
    assert!(ok, "stderr: {stderr}");
    let samples: Vec<&str> = stderr
        .lines()
        .filter(|l| l.starts_with("audit ") && l.contains("rel error"))
        .collect();
    assert_eq!(samples.len(), 2, "stderr: {stderr}");
    assert!(samples[0].starts_with("audit 1000 rows:"), "{}", samples[0]);
    // Final summary with the last relative error; loyal-only traffic must
    // land well inside the PCSA envelope (0.78/√64 ≈ 9.8%, allow 4σ).
    let summary = stderr
        .lines()
        .find(|l| l.starts_with("audit: "))
        .expect("final audit summary");
    assert!(summary.contains("2 samples over 2000 rows"), "{summary}");
    let err: f64 = summary
        .rsplit_once("final rel error ")
        .and_then(|(_, v)| v.trim().parse().ok())
        .expect("parse final rel error");
    assert!(err < 0.40, "final rel error {err} out of band: {summary}");
}

#[test]
fn audit_rejects_parallel_ingestion() {
    let (_, stderr, ok) = run_cli(
        &[
            "--lhs",
            "0",
            "--rhs",
            "1",
            "--audit",
            "100",
            "--threads",
            "2",
        ],
        "",
    );
    assert!(!ok);
    assert!(stderr.contains("--audit requires --threads 1"), "{stderr}");
}

#[test]
fn catalog_under_threads_matches_sequential_catalog() {
    let dir = std::env::temp_dir().join(format!("implicate-qcat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let qfile = dir.join("queries.txt");
    std::fs::write(
        &qfile,
        "loyal    one-to-one  0  1  support=1\n\
         sources  distinct    0  -\n\
         fanout   more-than   0  1  k=2\n",
    )
    .expect("write query file");
    let qfile_s = qfile.to_str().expect("utf-8 path");

    let input = traffic(3000, 1500);
    let (seq_out, seq_err, seq_ok) = run_cli(&["--query-file", qfile_s], &input);
    assert!(seq_ok, "stderr: {seq_err}");
    for threads in ["2", "3"] {
        let (par_out, par_err, par_ok) =
            run_cli(&["--query-file", qfile_s, "--threads", threads], &input);
        assert!(par_ok, "stderr: {par_err}");
        assert_eq!(
            par_out, seq_out,
            "catalog answers must be bit-identical under --threads {threads}"
        );
        assert!(par_err.contains("rows 6000"), "stderr: {par_err}");
        assert!(
            par_err.contains(&format!("over {threads} lanes")),
            "stderr: {par_err}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn parallel_catalog_watch_reports_settled_per_query_views() {
    let dir = std::env::temp_dir().join(format!("implicate-qwatch-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let qfile = dir.join("queries.txt");
    std::fs::write(&qfile, "loyal one-to-one 0 1 support=1\n").expect("write query file");
    let qfile_s = qfile.to_str().expect("utf-8 path");

    let input = traffic(2000, 0);
    let (_, stderr, ok) = run_cli(
        &[
            "--query-file",
            qfile_s,
            "--threads",
            "2",
            "--watch",
            "1000",
            "--stats-interval",
            "1000",
        ],
        &input,
    );
    assert!(ok, "stderr: {stderr}");
    // Watch boundaries publish + barrier, so the matched count is exact.
    assert!(
        stderr.contains("1000 rows [loyal]:") && stderr.contains("(1000 matched)"),
        "stderr: {stderr}"
    );
    assert!(
        stderr.contains("implicate_query_tuples{query=\"loyal\"} 1000"),
        "stderr: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn catalog_audit_still_requires_one_thread() {
    let dir = std::env::temp_dir().join(format!("implicate-qaudit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let qfile = dir.join("queries.txt");
    std::fs::write(&qfile, "loyal one-to-one 0 1 support=1\n").expect("write query file");
    let qfile_s = qfile.to_str().expect("utf-8 path");
    let (_, stderr, ok) = run_cli(
        &["--query-file", qfile_s, "--threads", "2", "--audit", "100"],
        "",
    );
    assert!(!ok);
    assert!(stderr.contains("--audit requires --threads 1"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_option_fails_with_usage() {
    let (_, stderr, ok) = run_cli(&["--bogus"], "");
    assert!(!ok);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}

#[test]
fn missing_required_columns_fails() {
    let (_, stderr, ok) = run_cli(&[], "");
    assert!(!ok);
    assert!(stderr.contains("--lhs is required"), "stderr: {stderr}");
}
