//! Direct coverage of the windowed counters (`core::sliding`,
//! `core::incremental`) through the `implicate` facade, including the
//! dirty-transition journal contract. Runs in both feature configs.

use implicate::core::incremental::IncrementalCounter;
use implicate::core::sliding::{MovingAverage, SlidingEstimator};
use implicate::sketch::estimate::relative_error;
use implicate::{
    DirtyReason, EstimatorConfig, Fringe, ImplicationConditions, TraceEvent, TraceHandle,
};

fn strict_config(seed: u64) -> EstimatorConfig {
    EstimatorConfig::new(ImplicationConditions::strict_one_to_one(1)).seed(seed)
}

#[test]
fn sliding_windows_retire_on_schedule_and_bound_memory() {
    let mut s = SlidingEstimator::new(strict_config(11), 800, 400);
    let mut origins = Vec::new();
    for i in 0..2_400u64 {
        if let Some(w) = s.update(&[i % 300], &[0]) {
            origins.push(w.origin);
            assert!(w.estimate.f0_sup > 0.0);
        }
    }
    assert_eq!(origins, vec![0, 400, 800, 1200, 1600]);
    assert!(
        s.open_origins() <= 2,
        "width/step = 2 bounds concurrent origins"
    );
    assert_eq!(s.position(), 2_400);
}

#[test]
fn sliding_estimates_follow_a_regime_change() {
    // Loyal regime, then every key takes a second partner: per-window
    // implication counts must collapse across the transition.
    let mut s = SlidingEstimator::new(strict_config(13), 1_000, 1_000);
    let mut counts = Vec::new();
    for i in 0..2_000u64 {
        let a = [i % 250];
        // Phase 2: each key's partner flips 0,1,0,1 across its four
        // occurrences per window, violating K = 1 for every key.
        let b = if i < 1_000 { [a[0]] } else { [(i / 250) % 2] };
        if let Some(w) = s.update(&a, &b) {
            counts.push(w.estimate.implication_count);
        }
    }
    assert_eq!(counts.len(), 2);
    let loyal_err = relative_error(250.0, counts[0]);
    assert!(loyal_err < 0.35, "loyal window err {loyal_err}");
    assert!(
        counts[1] < 0.3 * counts[0],
        "disloyal window {:.0} must collapse vs loyal {:.0}",
        counts[1],
        counts[0]
    );
}

#[test]
fn moving_average_smooths_closed_windows() {
    let mut s = SlidingEstimator::new(strict_config(17), 500, 500);
    let mut ma = MovingAverage::new(3);
    for i in 0..2_500u64 {
        if let Some(w) = s.update(&[i % 100], &[0]) {
            ma.push(w.estimate.implication_count);
        }
    }
    assert_eq!(ma.windows(), 3);
    let avg = ma.value().expect("five windows closed");
    let err = relative_error(100.0, avg);
    assert!(err < 0.35, "moving average err {err} ({avg:.1})");
}

#[test]
fn incremental_deltas_isolate_the_interval() {
    let mut c = IncrementalCounter::new(strict_config(19).build());
    for a in 0..3_000u64 {
        c.update(&[a], &[a]);
    }
    let t1 = c.snapshot();
    assert_eq!(t1.position, 3_000);
    for a in 3_000..5_000u64 {
        c.update(&[a], &[a]);
    }
    let d = c.since(&t1);
    assert_eq!(d.tuples, 2_000);
    let err = relative_error(2_000.0, d.implication_count);
    assert!(err < 0.35, "delta err {err}: {d:?}");
    // The underlying estimator remains accessible for queries.
    assert_eq!(c.estimator().tuples_seen(), 5_000);
}

#[test]
fn incremental_counter_journals_dirty_transitions() {
    // Attach the journal before wrapping: the handle rides inside the
    // wrapped estimator, so windowed bookkeeping and tracing compose.
    let mut est = strict_config(23).fringe(Fringe::Bounded(4)).build();
    let trace = TraceHandle::with_capacity(1 << 14);
    est.set_trace(trace.clone());
    let mut c = IncrementalCounter::new(est);

    for a in 0..1_000u64 {
        c.update(&[a], &[0]);
    }
    let t1 = c.snapshot();
    // Second partner for every key: mass dirty transitions after t1.
    for a in 0..1_000u64 {
        c.update(&[a], &[1]);
    }
    let d = c.since(&t1);
    assert_eq!(d.tuples, 1_000);
    assert!(
        d.implication_count < 0.0,
        "retroactive dirt must shrink the count: {d:?}"
    );

    match trace.journal() {
        Some(journal) => {
            assert!(TraceHandle::enabled());
            let dirty: Vec<(u64, u64)> = journal
                .events()
                .into_iter()
                .filter_map(|t| match t.event {
                    TraceEvent::Dirty {
                        key,
                        reason,
                        position,
                    } => {
                        assert_eq!(reason, DirtyReason::Multiplicity);
                        Some((key, position))
                    }
                    _ => None,
                })
                .collect();
            assert!(!dirty.is_empty(), "1000 betrayed keys, none journaled?");
            for &(key, position) in &dirty {
                assert!(
                    position > 1_000,
                    "transitions happen only in the second phase, got {position}"
                );
                assert_ne!(key, 0, "the journal carries the itemset hash");
            }
        }
        None => assert!(!TraceHandle::enabled()),
    }
}
