//! Proves the arena-backed estimator's steady-state update path is
//! allocation-free: once every key has been admitted and the slab tables
//! have grown to their working size, `update()` must never touch the
//! heap — the whole hot path runs over preallocated arena slots.
//!
//! Isolated in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use implicate::{EstimatorConfig, ImplicationConditions, ShardedEstimator};

struct CountingAlloc;

thread_local! {
    /// Per-thread allocation count, so concurrent test threads and the
    /// harness itself cannot pollute a measurement.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_update_performs_zero_allocations() {
    // Loyal keys under a high σ: every key stays open and tracked, so the
    // working set is fixed after the warm pass and later updates only
    // find-and-bump existing arena slots.
    let cond = ImplicationConditions::strict_one_to_one(1_000_000);
    let mut est = EstimatorConfig::new(cond).bitmaps(32).seed(13).build();
    let keys: Vec<(u64, u64)> = (0..256u64).map(|a| (a, a % 4)).collect();

    // Warm: admit every key and let every table reach its working shape
    // (arena growth is allowed to allocate here).
    for _ in 0..2 {
        for &(a, b) in &keys {
            est.update(&[a], &[b]);
        }
    }

    let before = allocs_on_this_thread();
    for _ in 0..200 {
        for &(a, b) in &keys {
            est.update(&[a], &[b]);
        }
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state update allocated on the hot path"
    );
    assert!(est.entries() > 0, "keys are still tracked");
}

#[test]
fn steady_state_update_hashed_performs_zero_allocations() {
    // Same contract one layer down: the pre-hashed entry point the
    // sharded pipeline drives must be equally quiet.
    let cond = ImplicationConditions::strict_one_to_one(1_000_000);
    let mut est = EstimatorConfig::new(cond).bitmaps(32).seed(29).build();
    let hashed: Vec<(u64, u64)> = (0..256u64).map(|a| est.hash_pair(&[a], &[a % 4])).collect();

    for &(h_a, b_fp) in &hashed {
        est.update_hashed(h_a, b_fp);
    }

    let before = allocs_on_this_thread();
    for _ in 0..200 {
        for &(h_a, b_fp) in &hashed {
            est.update_hashed(h_a, b_fp);
        }
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state update_hashed allocated on the hot path"
    );
}

#[test]
fn steady_state_grouped_batch_update_performs_zero_allocations() {
    // The counting-sort grouped path (batches at or above the grouping
    // threshold) keeps its scratch on the estimator: the first batch
    // sizes it, every later one reuses it.
    let cond = ImplicationConditions::strict_one_to_one(1_000_000);
    let mut est = EstimatorConfig::new(cond).bitmaps(32).seed(29).build();
    let hashed: Vec<(u64, u64)> = (0..4_096u64)
        .map(|a| est.hash_pair(&[a], &[a % 4]))
        .collect();

    for _ in 0..2 {
        est.update_hashed_batch(&hashed);
    }

    let before = allocs_on_this_thread();
    for _ in 0..200 {
        est.update_hashed_batch(&hashed);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state grouped batch update allocated on the hot path"
    );
}

#[test]
fn sharded_ingest_across_the_spsc_rings_keeps_the_router_off_the_heap() {
    // The batch handoff contract one layer up: once the recycle rings'
    // seeded buffer pools are circulating, the router's steady state —
    // fill a buffer, ship it down the forward ring, reclaim a drained
    // one from the reverse ring, quiesce at a barrier — must never
    // allocate on the routing thread. (Worker threads count their own
    // allocations; the thread-local counter isolates the router.)
    let cond = ImplicationConditions::strict_one_to_one(1_000_000);
    let est = EstimatorConfig::new(cond).bitmaps(32).seed(13).build();
    let mut sharded = ShardedEstimator::new(est, 3);
    let hasher = sharded.pair_hasher();
    // One burst stays within RING_DEPTH × BATCH pairs (8 × 1024), so even
    // if every batch hashed to the same lane its ships fit the seeded
    // buffer pool without waiting on the worker to recycle mid-burst.
    let hashed: Vec<(u64, u64)> = (0..4_096u64)
        .map(|a| hasher.hash_pair(&[a], &[a % 4]))
        .collect();

    // Warm: admit every key and let each shard's arena reach its working
    // shape (growth may allocate here, on the workers).
    for _ in 0..2 {
        sharded.update_hashed_batch(&hashed);
        sharded.barrier();
    }

    let before = allocs_on_this_thread();
    for _ in 0..50 {
        sharded.update_hashed_batch(&hashed);
        sharded.barrier();
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "router allocated on the steady-state ring handoff"
    );
    let est = sharded.finish();
    assert_eq!(est.tuples_seen(), 52 * 4_096);
}

#[test]
fn shedding_under_a_floor_budget_is_also_allocation_free() {
    // Pressure shedding recycles slots in place — even the degenerate
    // floor-pinned budget (every admission sheds) must stay off the heap
    // once the initial tables exist.
    let cond = ImplicationConditions::strict_one_to_one(2);
    let floor = EstimatorConfig::new(cond)
        .bitmaps(16)
        .seed(17)
        .build()
        .tracked_bytes();
    let mut est = EstimatorConfig::new(cond)
        .bitmaps(16)
        .seed(17)
        .memory_budget(floor)
        .build();
    for a in 0..512u64 {
        est.update(&[a], &[0]);
    }

    let before = allocs_on_this_thread();
    for a in 512..4_096u64 {
        est.update(&[a], &[0]);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "budget shedding allocated on the hot path"
    );
    assert!(est.tracked_bytes() <= floor);
}
