//! The catalog's load-bearing contract, property-tested: a query
//! evaluated inside a [`QueryCatalog`] — shared per-attribute hashing,
//! query-major batching, one global budget — answers **bit-for-bit**
//! identically to a standalone [`QueryEngine`] built from the same
//! template over the same stream. Registration order, batch boundaries,
//! co-resident queries, and mid-stream retirement must all be
//! unobservable.

use proptest::prelude::*;

use implicate::query::Filter;
use implicate::stream::AttrId;
use implicate::{
    EstimatorConfig, ImplicationConditions, ImplicationQuery, QueryCatalog, QueryEngine, Schema,
    ShardedCatalog, Tuple,
};

/// Fixed 3-attribute schema: wide enough for multi-attribute itemsets,
/// small enough that random masks hit interesting overlaps often.
const ARITY: usize = 3;

fn schema() -> Schema {
    Schema::new((0..ARITY).map(|i| (format!("c{i}"), 0)))
}

/// One random query over the 3-attribute schema. The rhs mask is
/// disjointed from the lhs (the constructors assert §3 disjointness);
/// when nothing is left for the rhs the query degrades to a distinct
/// count, which has no rhs at all.
fn arb_query() -> impl Strategy<Value = ImplicationQuery> {
    (
        // kind selector, lhs mask, rhs mask (masks non-empty)
        (0usize..5, 1u64..(1 << ARITY), 1u64..(1 << ARITY)),
        // k (doubles as c), min support
        (1u32..4, 1u64..4),
        // Filter clause, applied only when the leading flag is set.
        (prop::bool::ANY, 0u8..ARITY as u8, 0u64..6),
        prop::bool::ANY, // complement
    )
        .prop_map(
            |((kind, lhs_bits, rhs_bits), (k, support), clause, complement)| {
                let clause = clause.0.then_some((clause.1, clause.2));
                let rhs_bits = rhs_bits & !lhs_bits;
                let lhs = implicate::AttrSet::from_bits(lhs_bits);
                let rhs = implicate::AttrSet::from_bits(rhs_bits);
                let kind = if rhs_bits == 0 { 0 } else { kind };
                let mut q = match kind {
                    0 => ImplicationQuery::distinct_count(lhs),
                    1 => ImplicationQuery::one_to_one(lhs, rhs, support),
                    2 => ImplicationQuery::at_most(lhs, rhs, k, support),
                    3 => ImplicationQuery::more_than(lhs, rhs, k, support),
                    _ => ImplicationQuery::noisy(lhs, rhs, k, 0.85, support),
                };
                if complement {
                    q = q.complement();
                }
                if let Some((attr, value)) = clause {
                    q = q.filtered(Filter::new().and_eq(AttrId(attr), value));
                }
                q
            },
        )
}

fn tuples(raw: &[(u64, u64, u64)]) -> Vec<Tuple> {
    raw.iter()
        .map(|&(a, b, c)| Tuple::from([a, b, c]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any random catalog over any random stream answers each query
    /// bit-identically to that query running alone, and retiring a
    /// co-resident query mid-stream perturbs nothing.
    #[test]
    fn catalog_answers_match_standalone_engines(
        queries in proptest::collection::vec(arb_query(), 1..6),
        raw in proptest::collection::vec(
            (0u64..40, 0u64..6, 0u64..3), 0..600),
        batch in 1usize..97,
        seed in 0u64..500,
    ) {
        let schema = schema();
        let stream = tuples(&raw);
        let template = EstimatorConfig::new(ImplicationConditions::strict_one_to_one(1))
            .bitmaps(16)
            .seed(seed);

        let mut catalog = QueryCatalog::new(&schema, template);
        let ids: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| catalog.register(format!("q{i}"), q.clone()))
            .collect();
        let mut engines: Vec<QueryEngine> = queries
            .iter()
            .map(|q| QueryEngine::new(&schema, q.clone(), template))
            .collect();

        let split = stream.len() / 2;
        for chunk in stream[..split].chunks(batch) {
            catalog.process_batch(chunk);
            for engine in &mut engines {
                for t in chunk {
                    engine.process(t);
                }
            }
        }
        // Retire the first query halfway through: the survivors' state
        // lives in their own arenas and must not move.
        if ids.len() > 1 {
            prop_assert!(catalog.retire(ids[0]));
        }
        let survivors = if ids.len() > 1 { 1 } else { 0 };
        for chunk in stream[split..].chunks(batch) {
            catalog.process_batch(chunk);
            for engine in &mut engines[survivors..] {
                for t in chunk {
                    engine.process(t);
                }
            }
        }

        for (i, (id, engine)) in ids.iter().zip(&engines).enumerate().skip(survivors) {
            let from_catalog = catalog.answer(*id)
                .unwrap_or_else(|| panic!("query {i} retired unexpectedly"));
            prop_assert_eq!(
                from_catalog.to_bits(),
                engine.answer().to_bits(),
                "query {} diverged: catalog {} vs standalone {}",
                i,
                from_catalog,
                engine.answer()
            );
        }
    }

    /// The `--threads N` catalog is unobservable: for any query mix,
    /// any stream, any batching (empty batches included), and any lane
    /// count, the sharded catalog answers every query — and accounts
    /// every tuple — bit-identically to the sequential one-pass
    /// catalog. Lanes see every batch as a shared [`HashedBatch`] over
    /// SPSC rings, so each query replays the exact sequential path.
    #[test]
    fn sharded_catalog_matches_sequential_for_any_lane_count(
        queries in proptest::collection::vec(arb_query(), 1..6),
        raw in proptest::collection::vec(
            (0u64..40, 0u64..6, 0u64..3), 0..600),
        batch in 1usize..97,
        threads in 1usize..5,
        seed in 0u64..500,
    ) {
        let schema = schema();
        let stream = tuples(&raw);
        let template = EstimatorConfig::new(ImplicationConditions::strict_one_to_one(1))
            .bitmaps(16)
            .seed(seed);

        let mut seq = QueryCatalog::new(&schema, template);
        let mut base = QueryCatalog::new(&schema, template);
        let ids: Vec<_> = queries
            .iter()
            .enumerate()
            .map(|(i, q)| {
                seq.register(format!("q{i}"), q.clone());
                base.register(format!("q{i}"), q.clone())
            })
            .collect();

        let mut sharded = ShardedCatalog::new(base, threads);
        for chunk in stream.chunks(batch) {
            seq.process_batch(chunk);
            sharded.process_batch(chunk);
            sharded.process_batch(&[]); // an empty batch is a free no-op
        }
        // A mid-stream settled read must not perturb the final state.
        sharded.publish();
        sharded.barrier();

        let merged = sharded.finish();
        prop_assert_eq!(merged.tuples_seen(), seq.tuples_seen());
        for (i, id) in ids.iter().enumerate() {
            prop_assert_eq!(
                merged.answer(*id).expect("query live").to_bits(),
                seq.answer(*id).expect("query live").to_bits(),
                "query {} diverged under {} lanes",
                i,
                threads
            );
        }
    }

    /// A query registered mid-stream counts exactly the suffix: its
    /// answer is bit-identical to a standalone engine that only ever
    /// saw the post-registration tuples.
    #[test]
    fn late_registration_counts_only_the_suffix(
        query in arb_query(),
        raw in proptest::collection::vec(
            (0u64..40, 0u64..6, 0u64..3), 2..400),
        seed in 0u64..500,
    ) {
        let schema = schema();
        let stream = tuples(&raw);
        let template = EstimatorConfig::new(ImplicationConditions::strict_one_to_one(1))
            .bitmaps(16)
            .seed(seed);

        let mut catalog = QueryCatalog::new(&schema, template);
        // A bystander query keeps the pass busy before the late one
        // arrives.
        catalog.register(
            "bystander",
            ImplicationQuery::one_to_one(
                implicate::AttrSet::from_bits(1),
                implicate::AttrSet::from_bits(2),
                1,
            ),
        );
        let split = stream.len() / 2;
        catalog.process_batch(&stream[..split]);
        let late = catalog.register("late", query.clone());
        catalog.process_batch(&stream[split..]);

        let mut suffix_engine = QueryEngine::new(&schema, query, template);
        for t in &stream[split..] {
            suffix_engine.process(t);
        }
        prop_assert_eq!(
            catalog.answer(late).expect("late query live").to_bits(),
            suffix_engine.answer().to_bits()
        );
    }
}
