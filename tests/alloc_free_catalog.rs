//! Proves the catalog's steady-state batch path is allocation-free:
//! once the per-attribute hash scratch columns and every query's arena
//! have reached working size, `process_batch` over N co-resident
//! queries must never touch the heap — the multi-query pass costs
//! arithmetic, not allocations.
//!
//! Isolated in its own integration-test binary because the counting
//! `#[global_allocator]` is process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use implicate::query::Filter;
use implicate::stream::AttrId;
use implicate::{
    AttrSet, EstimatorConfig, HashedBatch, ImplicationConditions, ImplicationQuery, QueryCatalog,
    Schema, Tuple,
};

struct CountingAlloc;

thread_local! {
    /// Per-thread allocation count, so concurrent test threads and the
    /// harness itself cannot pollute a measurement.
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs_on_this_thread() -> u64 {
    THREAD_ALLOCS.with(Cell::get)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_process_batch_performs_zero_allocations() {
    // Loyal keys under a high σ keep every cell open and tracked, so
    // after the warm passes each query's working set is fixed and
    // updates only find-and-bump existing arena slots.
    let schema = Schema::new([("Src", 0), ("Dst", 0), ("Svc", 0)]);
    let template = EstimatorConfig::new(ImplicationConditions::strict_one_to_one(1_000_000))
        .bitmaps(16)
        .seed(7);
    let mut catalog = QueryCatalog::new(&schema, template);
    let (src, dst, svc) = (
        schema.attr_set(&["Src"]),
        schema.attr_set(&["Dst"]),
        schema.attr_set(&["Svc"]),
    );
    catalog.register("loyal", ImplicationQuery::one_to_one(src, dst, 1));
    catalog.register("pair", ImplicationQuery::at_most(src.union(svc), dst, 2, 1));
    catalog.register("services", ImplicationQuery::distinct_count(svc));
    // A filtered query exercises the skip path on the same batches.
    catalog.register(
        "filtered",
        ImplicationQuery::one_to_one(src, dst, 1).filtered(Filter::new().and_eq(AttrId(2), 0)),
    );

    let batch: Vec<Tuple> = (0..256u64)
        .map(|i| Tuple::from([i, i % 5, i % 3]))
        .collect();

    // Warm: admit every key, grow the shared hash columns to the batch
    // width, and let every arena reach its working shape (growth may
    // allocate here).
    for _ in 0..2 {
        catalog.process_batch(&batch);
    }

    let before = allocs_on_this_thread();
    for _ in 0..200 {
        catalog.process_batch(&batch);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state catalog process_batch allocated on the hot path"
    );
    assert_eq!(catalog.tuples_seen(), 202 * 256);
    assert!(catalog.tracked_bytes() > 0, "queries are still tracked");
}

#[test]
fn steady_state_process_hashed_performs_zero_allocations() {
    // The batch currency one layer up: applying a pre-hashed columnar
    // [`HashedBatch`] to every query — combiner fold into the shared
    // pair scratch, grouped estimator update, filters walking the raw
    // tuples — must never touch the heap once warm. This is exactly the
    // per-batch path every `ShardedCatalog` lane runs, so a quiet run
    // here certifies the `--threads N` catalog workers' steady state.
    let schema = Schema::new([("Src", 0), ("Dst", 0), ("Svc", 0)]);
    let template = EstimatorConfig::new(ImplicationConditions::strict_one_to_one(1_000_000))
        .bitmaps(16)
        .seed(23);
    let mut catalog = QueryCatalog::new(&schema, template);
    let (src, dst, svc) = (
        schema.attr_set(&["Src"]),
        schema.attr_set(&["Dst"]),
        schema.attr_set(&["Svc"]),
    );
    catalog.register("loyal", ImplicationQuery::one_to_one(src, dst, 1));
    catalog.register("pair", ImplicationQuery::at_most(src.union(svc), dst, 2, 1));
    catalog.register(
        "filtered",
        ImplicationQuery::one_to_one(src, dst, 1).filtered(Filter::new().and_eq(AttrId(2), 0)),
    );

    // Hash the workload once; steady state re-applies the same batch.
    let tuples: Vec<Tuple> = (0..256u64)
        .map(|i| Tuple::from([i, i % 5, i % 3]))
        .collect();
    let mut batch = HashedBatch::new();
    catalog.hasher().clone().hash_batch(tuples, &mut batch);

    for _ in 0..2 {
        catalog.process_hashed(&batch);
    }

    let before = allocs_on_this_thread();
    for _ in 0..200 {
        catalog.process_hashed(&batch);
    }
    let after = allocs_on_this_thread();
    assert_eq!(
        after - before,
        0,
        "steady-state catalog process_hashed allocated on the hot path"
    );
    assert_eq!(catalog.tuples_seen(), 202 * 256);
}

#[test]
fn wait_free_reads_stay_off_the_heap() {
    // The per-query readers the catalog hands out answer from published
    // view slots; reading (view resolution + estimate) must not
    // allocate, or a tight polling client would put pressure on the
    // writer's allocator.
    let schema = Schema::new([("Src", 0), ("Dst", 0)]);
    let template = EstimatorConfig::new(ImplicationConditions::strict_one_to_one(1_000_000))
        .bitmaps(16)
        .seed(11);
    let mut catalog = QueryCatalog::new(&schema, template);
    let id = catalog.register(
        "loyal",
        ImplicationQuery::one_to_one(AttrSet::from_bits(1), AttrSet::from_bits(2), 1),
    );
    let reader = catalog.reader(id).expect("registered");

    let batch: Vec<Tuple> = (0..128u64).map(|i| Tuple::from([i, i % 4])).collect();
    catalog.process_batch(&batch);
    catalog.publish();
    let _ = reader.view().estimate();

    let before = allocs_on_this_thread();
    for _ in 0..200 {
        let view = reader.view();
        assert!(view.tuples() > 0);
        let _ = view.estimate();
    }
    let after = allocs_on_this_thread();
    assert_eq!(after - before, 0, "wait-free read allocated");
}
