//! End-to-end contract of the enforced global memory budget, through the
//! `implicate` facade: tracked-state bytes never exceed a configured
//! ceiling, pressure shedding is observable, and the *absence* of a
//! budget changes nothing — bit for bit.
//!
//! Budgeted runs are kept sequential: under sharded ingestion the ceiling
//! still holds but shed victims depend on thread interleaving (see the
//! `imp_core::parallel` module docs).

use implicate::{EstimatorConfig, ImplicationConditions, MetricsRegistry};

fn cond() -> ImplicationConditions {
    ImplicationConditions::one_to_c(2, 0.5, 3)
}

/// The exact byte floor an estimator of this shape reserves at
/// construction (initial arena tables; nothing has grown yet).
fn construction_floor(c: ImplicationConditions, bitmaps: usize, seed: u64) -> usize {
    EstimatorConfig::new(c)
        .bitmaps(bitmaps)
        .seed(seed)
        .build()
        .tracked_bytes()
}

#[test]
fn tracked_bytes_never_exceed_the_budget() {
    let floor = construction_floor(cond(), 16, 3);
    // Head-room for a few arena doublings, far below unconstrained needs.
    let limit = floor * 2;
    let mut est = EstimatorConfig::new(cond())
        .bitmaps(16)
        .seed(3)
        .memory_budget(limit)
        .build();
    assert_eq!(est.memory_budget().limit(), limit);
    for a in 0..20_000u64 {
        est.update(&[a % 7_000], &[a % 5]);
        assert!(
            est.memory_budget().used() <= limit,
            "budget exceeded at tuple {a}: {} > {limit}",
            est.memory_budget().used()
        );
    }
    assert!(est.tracked_bytes() <= limit);
    if MetricsRegistry::enabled() {
        let m = est.metrics().registry();
        assert!(
            m.estimator.shed_events.get() > 0,
            "an under-provisioned budget must shed"
        );
        assert_eq!(m.estimator.mem_budget.get(), limit as u64);
        assert_eq!(m.estimator.mem_bytes.get(), est.tracked_bytes() as u64);
        assert!(m.estimator.mem_bytes.peak() <= limit as u64);
    }
    // Still answers: a constrained sketch degrades, it does not break.
    assert!(est.estimate_now().implication_count.is_finite());
}

#[test]
fn no_budget_is_bit_identical_to_a_huge_budget() {
    // The enforcement path must be invisible when it never bites: a run
    // with a budget nothing approaches serializes byte-identically to a
    // run with no budget at all.
    let mut plain = EstimatorConfig::new(cond()).bitmaps(32).seed(5).build();
    let mut capped = EstimatorConfig::new(cond())
        .bitmaps(32)
        .seed(5)
        .memory_budget(1 << 30)
        .build();
    for a in 0..30_000u64 {
        plain.update(&[a % 9_000], &[a % 4]);
        capped.update(&[a % 9_000], &[a % 4]);
    }
    assert_eq!(plain.estimate_now(), capped.estimate_now());
    assert_eq!(plain.to_bytes(), capped.to_bytes());
}

#[test]
fn snapshot_restore_rearms_the_budget() {
    let floor = construction_floor(cond(), 16, 7);
    let limit = floor * 2;
    let mut est = EstimatorConfig::new(cond())
        .bitmaps(16)
        .seed(7)
        .memory_budget(limit)
        .build();
    for a in 0..5_000u64 {
        est.update(&[a], &[a % 3]);
    }
    let mut restored =
        implicate::ImplicationEstimator::from_bytes(est.to_bytes()).expect("restore");
    // Restoration is deliberately unbudgeted (persisted state must load);
    // the ceiling is re-armed explicitly, as the CLI does after --resume.
    // Decode rebuilds tables at the canonical load factor, so the
    // restored footprint may exceed the old ceiling that squeezed them —
    // the re-armed budget bounds growth from wherever restore landed.
    assert!(!restored.memory_budget().is_limited());
    let ceiling = restored.memory_budget().used().max(limit);
    restored.set_memory_budget(Some(ceiling));
    assert_eq!(restored.memory_budget().limit(), ceiling);
    for a in 5_000..15_000u64 {
        restored.update(&[a], &[a % 3]);
        assert!(
            restored.memory_budget().used() <= ceiling,
            "re-armed budget exceeded at tuple {a}"
        );
    }
}

#[test]
fn lifting_the_budget_resumes_growth() {
    let floor = construction_floor(cond(), 16, 11);
    let mut est = EstimatorConfig::new(cond())
        .bitmaps(16)
        .seed(11)
        .memory_budget(floor)
        .build();
    for a in 0..3_000u64 {
        est.update(&[a], &[0]);
    }
    let frozen = est.tracked_bytes();
    assert_eq!(frozen, floor, "a floor budget freezes every table");
    est.set_memory_budget(None);
    assert!(!est.memory_budget().is_limited());
    for a in 3_000..6_000u64 {
        est.update(&[a], &[0]);
    }
    assert!(
        est.tracked_bytes() > frozen,
        "lifting the ceiling must let arenas grow again"
    );
}
