//! End-to-end tracing tests through the `implicate` facade, in both
//! feature configurations. Every test must pass with
//! `--no-default-features` too — CI runs both (DESIGN.md §8.3).

use implicate::{
    DirtyReason, EstimatorConfig, ImplicationConditions, SpanKind, TraceEvent, TraceHandle,
};

#[test]
fn estimators_start_untraced_and_opt_in() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(2).build();
    assert!(!est.trace().is_active(), "tracing is opt-in at runtime");
    est.set_trace(TraceHandle::with_capacity(1 << 12));
    assert_eq!(est.trace().is_active(), TraceHandle::enabled());
}

#[test]
fn journal_captures_dirty_transitions_and_commits() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(2).build();
    let trace = TraceHandle::with_capacity(1 << 14);
    est.set_trace(trace.clone());
    for a in 0..2_000u64 {
        est.update(&[a], &[1]);
        if a % 2 == 0 {
            est.update(&[a], &[2]); // second partner: violates K = 1
        }
    }

    if !TraceHandle::enabled() {
        assert!(trace.journal().is_none());
        return;
    }
    let journal = trace.journal().expect("journal attached");
    assert!(journal.recorded() > 0);
    let events = journal.events();
    let dirty: Vec<_> = events
        .iter()
        .filter_map(|t| match t.event {
            TraceEvent::Dirty {
                reason, position, ..
            } => Some((reason, position)),
            _ => None,
        })
        .collect();
    assert!(!dirty.is_empty(), "disloyal keys must journal transitions");
    for (reason, position) in &dirty {
        assert_eq!(*reason, DirtyReason::Multiplicity);
        assert!(*position <= 3_000, "position is the tuple count");
    }
    assert!(
        events
            .iter()
            .any(|t| matches!(t.event, TraceEvent::CellCommit { .. })),
        "some loyal keys must commit cells"
    );
}

#[test]
fn batch_and_snapshot_spans_close_into_the_journal() {
    let cond = ImplicationConditions::one_to_c(2, 0.8, 2);
    let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(4).build();
    let trace = TraceHandle::with_capacity(1 << 12);
    est.set_trace(trace.clone());
    let pairs: Vec<(u64, u64)> = (0..500u64).map(|i| (i % 100, i % 5)).collect();
    est.update_batch(&pairs);
    let bytes = est.to_bytes();

    if !TraceHandle::enabled() {
        assert!(trace.journal().is_none());
        return;
    }
    let spans: Vec<_> = trace
        .journal()
        .expect("journal attached")
        .events()
        .into_iter()
        .filter_map(|t| match t.event {
            TraceEvent::SpanClosed {
                kind,
                nanos,
                quantity,
            } => Some((kind, nanos, quantity)),
            _ => None,
        })
        .collect();
    let batch = spans
        .iter()
        .find(|(k, ..)| *k == SpanKind::UpdateBatch)
        .expect("update_batch span");
    assert_eq!(batch.2, 500, "span quantity is the batch size");
    let encode = spans
        .iter()
        .find(|(k, ..)| *k == SpanKind::SnapshotEncode)
        .expect("snapshot span");
    assert_eq!(encode.2, bytes.len() as u64, "span quantity is the bytes");
}

#[test]
fn jsonl_drain_reports_the_feature_state() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(6).build();
    est.set_trace(TraceHandle::with_capacity(64));
    // Every key betrays its first partner: thousands of journal events
    // through a 64-slot ring, so laps (drops) are guaranteed.
    for a in 0..5_000u64 {
        est.update(&[a], &[1]);
        est.update(&[a], &[2]);
    }
    match est.trace().journal() {
        Some(journal) => {
            assert!(TraceHandle::enabled());
            let jsonl = journal.to_jsonl();
            let summary = jsonl.lines().last().expect("summary line");
            assert!(summary.contains("\"event\":\"journal_summary\""));
            assert!(summary.contains("\"enabled\":true"));
            // A 64-slot ring under hundreds of events must report drops.
            assert!(journal.dropped() > 0);
        }
        None => assert!(!TraceHandle::enabled()),
    }
}

#[test]
fn budget_pressure_lifecycle_reaches_the_journal() {
    // Full lifecycle of the memory-budget pressure signal: pin the budget
    // at the construction floor (arenas can never grow), stream more
    // distinct itemsets than the initial tables hold, and the shedding
    // must surface as `BudgetPressure` events carrying stream positions.
    let cond = ImplicationConditions::strict_one_to_one(2);
    let floor = EstimatorConfig::new(cond)
        .bitmaps(16)
        .seed(9)
        .build()
        .tracked_bytes();
    let mut est = EstimatorConfig::new(cond)
        .bitmaps(16)
        .seed(9)
        .memory_budget(floor)
        .build();
    let trace = TraceHandle::with_capacity(1 << 14);
    est.set_trace(trace.clone());
    // Every key arrives once (support 1 < σ = 2): all stay tracked, so
    // admissions beyond the frozen tables must shed.
    for a in 0..4_000u64 {
        est.update(&[a], &[0]);
    }
    assert!(est.tracked_bytes() <= floor, "budget ceiling violated");

    if !TraceHandle::enabled() {
        assert!(trace.journal().is_none());
        return;
    }
    let pressure: Vec<_> = trace
        .journal()
        .expect("journal attached")
        .events()
        .into_iter()
        .filter_map(|t| match t.event {
            TraceEvent::BudgetPressure { shed, position } => Some((shed, position)),
            _ => None,
        })
        .collect();
    assert!(
        !pressure.is_empty(),
        "a floor-pinned budget must journal pressure events"
    );
    for (shed, position) in &pressure {
        assert!(*shed >= 1, "pressure events carry the shed count");
        assert!(*position <= 4_000, "position is the tuple count");
    }
}

#[test]
fn restored_snapshots_start_untraced() {
    let cond = ImplicationConditions::strict_one_to_one(1);
    let mut est = EstimatorConfig::new(cond).bitmaps(16).seed(8).build();
    est.set_trace(TraceHandle::with_capacity(1 << 10));
    for a in 0..200u64 {
        est.update(&[a], &[0]);
    }
    let restored = implicate::ImplicationEstimator::from_bytes(est.to_bytes()).expect("restore");
    assert!(
        !restored.trace().is_active(),
        "journals are process-local, not part of the snapshot"
    );
}
