//! # implicate
//!
//! A production-quality Rust implementation of **NIPS/CI** — the
//! implication-count estimation framework of Sismanis & Roussopoulos,
//! *Maintaining Implicated Statistics in Constrained Environments*
//! (ICDE 2005) — together with every substrate and baseline its evaluation
//! depends on.
//!
//! An *implication statistic* asks: across a high-volume stream, how many
//! distinct itemsets `a` of attribute set `A` appear (almost) exclusively
//! with a bounded set of `B`-itemsets? E.g. *"how many destinations are
//! contacted by just a single source?"* (intrusion detection), *"how many
//! services are requested from at most two sources 80% of the time?"*
//! (traffic characterization). NIPS/CI answers these within ~10% relative
//! error using memory independent of both the attribute cardinalities and
//! the stream length.
//!
//! ## Crate map
//!
//! * [`core`] (re-exported at the top level) — conditions, the NIPS bitmap
//!   with its floating fringe, the CI estimator, queries, windows.
//! * [`sketch`] — hashing and probabilistic-counting machinery.
//! * [`stream`] — schemas, tuples, projections, sources.
//! * [`datagen`] — the paper's synthetic workloads.
//! * [`baselines`] — exact counting, Distinct Sampling, (Implication)
//!   Lossy Counting, Sticky Sampling, and the naive §4.2 bitmap.
//!
//! ## Quick start
//!
//! ```
//! use implicate::{EstimatorConfig, ImplicationConditions};
//!
//! // How many sources stick to a single destination, allowing no noise?
//! let cond = ImplicationConditions::strict_one_to_one(1);
//! let mut est = EstimatorConfig::new(cond).build();
//!
//! for src in 0..10_000u64 {
//!     let dst = if src % 2 == 0 { src } else { src % 97 };
//!     est.update(&[src], &[dst]);
//!     if src % 2 == 1 {
//!         est.update(&[src], &[(src + 1) % 97]); // disloyal second contact
//!     }
//! }
//! let e = est.estimate_now();
//! // ~5000 loyal sources, within estimator tolerance.
//! assert!((e.implication_count - 5000.0).abs() < 1500.0);
//! ```
//!
//! Higher-level query construction lives in [`query`]; evaluating a
//! whole catalog of queries in a single stream pass lives in
//! [`catalog`]. See the `examples/` directory for runnable scenarios.

pub mod spec;
pub mod text;

pub use imp_baselines as baselines;
pub use imp_core as core;
pub use imp_datagen as datagen;
pub use imp_sketch as sketch;
pub use imp_stream as stream;

pub use imp_baselines::{
    AccuracyAuditor, DistinctSampling, ErrorSample, ExactCounter, Ilc, ImplicationCounter,
    ImplicationStickySampling, LossyCounter, NaiveImplicationBitmap, StickySampler,
};
pub use imp_core::catalog::{self, CatalogError, QueryCatalog, QueryId, ShardedCatalog};
pub use imp_core::query::{self, Filter};
pub use imp_core::{
    lint_prometheus, CapacityPolicy, Confidence, DirtyReason, Estimate, EstimateReader,
    EstimatorConfig, Fringe, ImplicationConditions, ImplicationEstimator, ImplicationQuery,
    Log2Hist, MemoryBudget, MetricsHandle, MetricsRegistry, MultiplicityPolicy, NipsBitmap,
    NodeHealth, NodeRegistry, NodeStatus, PairHasher, QueryEngine, QueryKind, ReadView,
    ShardedEstimator, Span, SpanKind, TraceEvent, TraceHandle, TraceJournal, TracedEvent,
    UpdateOutcome, WireMetrics,
};
pub use imp_stream::{
    AttrSet, HashedBatch, ItemKey, Projector, QueryCombiner, Schema, Tuple, TupleHasher,
};
