//! Parsing of declarative query-catalog specs.
//!
//! One grammar serves both front ends: the `implicate --query-file` line
//! format and the body of `implicate-serve`'s `POST /query` control
//! endpoint. A spec line is
//!
//! ```text
//! name kind lhs rhs [options…]
//! ```
//!
//! where `kind` is `distinct` | `one-to-one` | `at-most` | `more-than` |
//! `noisy`; `lhs`/`rhs` are comma-separated 0-based column lists (`-`
//! for none); and options are `k=K`, `c=C`, `psi=PERCENT`, `support=N`,
//! the bare flag `complement`, and repeatable `where=COL=VALUE`
//! conditions (`VALUE` is matched as a raw text field, hashed with the
//! same field hasher the data rows go through).

use imp_core::query::{Filter, ImplicationQuery};
use imp_sketch::hash::MixHasher;
use imp_stream::{AttrId, AttrSet};

/// Seed of the hasher folding raw text fields into 64-bit fingerprints.
/// Rows and `where=` literals must agree on it, so it is fixed across
/// every front end (CLI, serve).
pub const FIELD_HASHER_SEED: u64 = 0x00f1_e1d5;

/// One parsed spec line: a registration name, the query, and the raw
/// column lists (kept for exact-audit projections and schema sizing).
#[derive(Debug, Clone)]
pub struct QuerySpec {
    /// The name the query registers under.
    pub name: String,
    /// The declarative query (filter included).
    pub query: ImplicationQuery,
    /// `lhs` columns in spec order.
    pub lhs_cols: Vec<usize>,
    /// `rhs` columns in spec order.
    pub rhs_cols: Vec<usize>,
}

impl QuerySpec {
    /// The highest column this spec touches (lhs, rhs, or a `where=`
    /// clause) — schemas must span at least `max_column() + 1`.
    pub fn max_column(&self) -> usize {
        self.lhs_cols
            .iter()
            .chain(&self.rhs_cols)
            .copied()
            .chain(self.query.filter.attrs().iter().map(|a| a.index()))
            .max()
            .unwrap_or(0)
    }
}

fn parse_cols(raw: &str, side: &str) -> Result<Vec<usize>, String> {
    if raw == "-" {
        return Ok(Vec::new());
    }
    raw.split(',')
        .map(|c| {
            let col: usize = c
                .trim()
                .parse()
                .map_err(|_| format!("bad {side} column {c:?}"))?;
            if col >= 64 {
                return Err(format!("{side} column {col} out of range (max 63)"));
            }
            Ok(col)
        })
        .collect()
}

/// Parses one spec line (which must not be empty or a comment).
pub fn parse_query_line(line: &str) -> Result<QuerySpec, String> {
    let mut tokens = line.split_whitespace();
    let name = tokens.next().ok_or("missing query name")?;
    let kind = tokens.next().ok_or("missing query kind")?;
    let lhs_cols = parse_cols(tokens.next().ok_or("missing lhs columns")?, "lhs")?;
    let rhs_cols = parse_cols(tokens.next().ok_or("missing rhs columns")?, "rhs")?;
    let set = |cols: &[usize]| AttrSet::from_bits(cols.iter().fold(0, |m, &c| m | 1 << c));
    let (lhs, rhs) = (set(&lhs_cols), set(&rhs_cols));

    let field_hasher = MixHasher::new(FIELD_HASHER_SEED);
    let mut k: u32 = 1;
    let mut c: u32 = 1;
    let mut psi: f64 = 100.0;
    let mut support: u64 = 1;
    let mut complement = false;
    let mut filter = Filter::new();
    for opt in tokens {
        if opt == "complement" {
            complement = true;
        } else if let Some(v) = opt.strip_prefix("k=") {
            k = v.parse().map_err(|_| "bad k=")?;
        } else if let Some(v) = opt.strip_prefix("c=") {
            c = v.parse().map_err(|_| "bad c=")?;
        } else if let Some(v) = opt.strip_prefix("psi=") {
            psi = v.parse().map_err(|_| "bad psi=")?;
            if !(0.0..=100.0).contains(&psi) {
                return Err("psi= must be in [0, 100]".into());
            }
        } else if let Some(v) = opt.strip_prefix("support=") {
            support = v.parse().map_err(|_| "bad support=")?;
        } else if let Some(v) = opt.strip_prefix("where=") {
            let (col, value) = v.split_once('=').ok_or("where= needs COL=VALUE")?;
            let col: usize = col.parse().map_err(|_| "bad where= column")?;
            if col >= 64 {
                return Err(format!("where= column {col} out of range (max 63)"));
            }
            filter = filter.and_eq(
                AttrId(col as u8),
                crate::text::hash_field(&field_hasher, value),
            );
        } else {
            return Err(format!("unknown option {opt:?}"));
        }
    }

    if rhs_cols.is_empty() && kind != "distinct" {
        return Err(format!("kind {kind:?} needs rhs columns"));
    }
    let mut query = match kind {
        "distinct" => {
            if !rhs_cols.is_empty() {
                return Err("distinct takes no rhs (use `-`)".into());
            }
            ImplicationQuery::distinct_count(lhs)
        }
        "one-to-one" => ImplicationQuery::one_to_one(lhs, rhs, support),
        "at-most" => ImplicationQuery::at_most(lhs, rhs, k, support),
        "more-than" => ImplicationQuery::more_than(lhs, rhs, k, support),
        "noisy" => ImplicationQuery::noisy(lhs, rhs, c, psi / 100.0, support),
        other => return Err(format!("unknown query kind {other:?}")),
    };
    if complement {
        query = query.complement();
    }
    query = query.filtered(filter);
    Ok(QuerySpec {
        name: name.to_owned(),
        query,
        lhs_cols,
        rhs_cols,
    })
}

/// Parses a whole query file (empty lines and `#` comments skipped);
/// errors carry 1-based line numbers.
pub fn parse_query_file(body: &str) -> Result<Vec<QuerySpec>, String> {
    let mut out = Vec::new();
    for (lineno, line) in body.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(parse_query_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?);
    }
    if out.is_empty() {
        return Err("no queries".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_core::query::QueryKind;
    use imp_stream::Tuple;

    #[test]
    fn parses_every_kind() {
        let file = "\
            # comment\n\
            sources   distinct    0    -\n\
            loyal     one-to-one  0    1     support=2\n\
            capped    at-most     0    1,2   k=3\n\
            fanout    more-than   0    1     k=10 support=5\n\
            mostly    noisy       0,2  1     c=2 psi=85 support=3\n\
            flipped   one-to-one  1    2     complement\n";
        let specs = parse_query_file(file).expect("parses");
        assert_eq!(specs.len(), 6);
        assert_eq!(specs[0].name, "sources");
        assert_eq!(specs[0].query.kind, QueryKind::DistinctCount);
        assert_eq!(specs[1].query.conditions.min_support, 2);
        assert_eq!(specs[2].query.conditions.max_multiplicity, 3);
        assert_eq!(specs[2].rhs_cols, vec![1, 2]);
        assert_eq!(specs[3].query.kind, QueryKind::Complement);
        assert_eq!(specs[4].lhs_cols, vec![0, 2]);
        assert_eq!(specs[5].query.kind, QueryKind::Complement);
        assert_eq!(specs[4].max_column(), 2);
    }

    #[test]
    fn where_clause_hashes_the_literal_like_a_row_field() {
        let spec = parse_query_line("morning one-to-one 0 1 where=2=am").expect("parses");
        let hasher = MixHasher::new(FIELD_HASHER_SEED);
        let am = crate::text::hash_field(&hasher, "am");
        let pm = crate::text::hash_field(&hasher, "pm");
        assert!(spec.query.filter.matches(&Tuple::from([1, 2, am])));
        assert!(!spec.query.filter.matches(&Tuple::from([1, 2, pm])));
        assert_eq!(spec.max_column(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        for bad in [
            "only-a-name",
            "q unknown-kind 0 1",
            "q distinct 0 1",
            "q one-to-one 0 -",
            "q one-to-one 0 64",
            "q one-to-one 0 1 k=x",
            "q one-to-one 0 1 psi=140",
            "q one-to-one 0 1 where=2",
            "q one-to-one 0 1 bogus",
        ] {
            assert!(parse_query_line(bad).is_err(), "{bad:?} should be rejected");
        }
        assert!(parse_query_file("# only comments\n").is_err());
    }
}
