//! `implicate` — command-line implication statistics over delimited
//! streams.
//!
//! Reads rows from a file or stdin, projects two column sets, and
//! maintains a NIPS/CI implication-count estimate online:
//!
//! ```text
//! # how many sources (col 0) stick to a single destination (col 1)?
//! implicate --lhs 0 --rhs 1 < traffic.csv
//!
//! # destinations contacted by >100 sources, reported every 100k rows
//! implicate --lhs 1 --rhs 0 --max-mult 100 --complement --watch 100000
//!
//! # spread parsing + ingestion over 4 cores (same results, bit for bit)
//! implicate --lhs 0 --rhs 1 --threads 4 traffic.csv
//!
//! # checkpoint / resume across restarts
//! implicate --lhs 0 --rhs 1 --save state.imps
//! implicate --lhs 0 --rhs 1 --resume state.imps --save state.imps
//!
//! # observability: end-of-run counter report + periodic line protocol
//! implicate --lhs 0 --rhs 1 --stats --stats-interval 100000 traffic.csv
//!
//! # structured tracing (JSONL event journal) + online accuracy audit
//! implicate --lhs 0 --rhs 1 --trace-out events.jsonl --audit 100000 traffic.csv
//!
//! # a whole catalog of queries in ONE pass over the stream
//! implicate --query-file queries.txt --stats traffic.csv
//!
//! # the same catalog, queries spread over 4 cores (bit-identical)
//! implicate --query-file queries.txt --threads 4 traffic.csv
//! ```
//!
//! A query file declares one query per line (`#` comments allowed):
//!
//! ```text
//! # name      kind        lhs   rhs   options
//! loyal       one-to-one  0     1     support=1
//! fanout      more-than   0     1     k=10
//! sources     distinct    0     -
//! mostly-one  noisy       0     1     c=1 psi=80 support=2
//! not-single  one-to-one  1     2     complement
//! morning     one-to-one  0     1     where=3=morning
//! ```
//!
//! All queries share a single attribute-wise hashing stage and one
//! global `--memory-budget`; each tuple is hashed once no matter how
//! many queries are registered (see DESIGN.md §8.8).
//!
//! Fields are treated as opaque strings (hashed to 64-bit fingerprints),
//! so the tool works on IPs, URLs or numeric ids alike.

use std::io::{BufRead, Write};
use std::process::exit;
use std::sync::mpsc::sync_channel;
use std::sync::OnceLock;

use implicate::sketch::hash::MixHasher;
use implicate::spec::QuerySpec;
use implicate::{
    AccuracyAuditor, EstimatorConfig, ExactCounter, Fringe, ImplicationConditions,
    ImplicationCounter, ImplicationEstimator, MetricsHandle, MultiplicityPolicy, QueryCatalog,
    QueryKind, Schema, ShardedCatalog, ShardedEstimator, TraceHandle, Tuple,
};

/// Lines per batch handed from the reader to the parser pool.
const LINE_BATCH: usize = 2048;

/// Bound, in batches, of the parallel pipeline's channels.
const PIPE_DEPTH: usize = 4;

/// Wire format of the periodic `--stats-interval` emission.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StatsFormat {
    /// Influx line protocol: one line, `implicate k=vi ...` (the default).
    Influx,
    /// Prometheus text exposition: `# TYPE` + sample line per counter.
    Prom,
}

/// Renders one periodic stats emission in the selected format.
fn stats_emission(metrics: &MetricsHandle, format: StatsFormat) -> String {
    match format {
        StatsFormat::Influx => metrics.line_protocol("implicate"),
        StatsFormat::Prom => metrics.prometheus("implicate").trim_end().to_owned(),
    }
}

/// Accumulates option values while parsing the command line.
struct CliDraft {
    lhs: Option<Vec<usize>>,
    rhs: Option<Vec<usize>>,
    max_mult: u32,
    support: u64,
    top_c: Option<u32>,
    confidence: f64,
    policy: MultiplicityPolicy,
    complement: bool,
    delimiter: Option<char>,
    bitmaps: usize,
    fringe: u32,
    memory_budget: Option<usize>,
    seed: u64,
    threads: usize,
    watch: Option<u64>,
    stats: bool,
    stats_interval: Option<u64>,
    stats_format: StatsFormat,
    trace_out: Option<String>,
    trace_buffer: usize,
    audit: Option<u64>,
    audit_sample: u64,
    save: Option<String>,
    resume: Option<String>,
    query_file: Option<String>,
    input: Option<String>,
}

impl Default for CliDraft {
    fn default() -> Self {
        Self {
            lhs: None,
            rhs: None,
            max_mult: 1,
            support: 1,
            top_c: None,
            confidence: 100.0,
            policy: MultiplicityPolicy::Strict,
            complement: false,
            delimiter: None,
            bitmaps: 64,
            fringe: 4,
            memory_budget: None,
            seed: 42,
            threads: 1,
            watch: None,
            stats: false,
            stats_interval: None,
            stats_format: StatsFormat::Influx,
            trace_out: None,
            trace_buffer: implicate::core::trace::DEFAULT_JOURNAL_EVENTS,
            audit: None,
            audit_sample: 1,
            save: None,
            resume: None,
            query_file: None,
            input: None,
        }
    }
}

/// One CLI option: flag name, value placeholder (empty for boolean
/// flags), help text (extra lines indent under the first), and the
/// action applying one occurrence to the draft. The table drives both
/// parsing and the generated usage text.
struct Opt {
    name: &'static str,
    metavar: &'static str,
    doc: &'static str,
    set: fn(&mut CliDraft, &str),
}

const OPTIONS: &[Opt] = &[
    Opt {
        name: "--lhs",
        metavar: "COLS",
        doc: "comma-separated 0-based columns forming the counted\nitemset A (e.g. --lhs 0 or --lhs 0,2)",
        set: |d, v| d.lhs = Some(parse_cols(v)),
    },
    Opt {
        name: "--rhs",
        metavar: "COLS",
        doc: "columns forming the implied itemset B",
        set: |d, v| d.rhs = Some(parse_cols(v)),
    },
    Opt {
        name: "--max-mult",
        metavar: "K",
        doc: "maximum multiplicity (default 1)",
        set: |d, v| d.max_mult = parse_num(v, "--max-mult"),
    },
    Opt {
        name: "--support",
        metavar: "N",
        doc: "minimum absolute support σ (default 1)",
        set: |d, v| d.support = parse_num(v, "--support"),
    },
    Opt {
        name: "--top-c",
        metavar: "C",
        doc: "the c of the top-confidence level (default = K)",
        set: |d, v| d.top_c = Some(parse_num(v, "--top-c")),
    },
    Opt {
        name: "--confidence",
        metavar: "P",
        doc: "minimum top-c confidence in percent (default 100)",
        set: |d, v| d.confidence = parse_num(v, "--confidence"),
    },
    Opt {
        name: "--policy",
        metavar: "P",
        doc: "strict | tracktop (default strict)",
        set: |d, v| {
            d.policy = match v {
                "strict" => MultiplicityPolicy::Strict,
                "tracktop" => MultiplicityPolicy::TrackTop,
                other => die(&format!("unknown policy {other:?}")),
            }
        },
    },
    Opt {
        name: "--complement",
        metavar: "",
        doc: "report the non-implication count S̄ instead of S",
        set: |d, _| d.complement = true,
    },
    Opt {
        name: "--delimiter",
        metavar: "C",
        doc: "field delimiter (default: any whitespace; e.g. ',')",
        set: |d, v| {
            let mut chars = v.chars();
            d.delimiter = chars.next();
            if d.delimiter.is_none() || chars.next().is_some() {
                die("--delimiter must be a single character");
            }
        },
    },
    Opt {
        name: "--bitmaps",
        metavar: "M",
        doc: "stochastic-averaging bitmaps, power of two (default 64)",
        set: |d, v| d.bitmaps = parse_num(v, "--bitmaps"),
    },
    Opt {
        name: "--fringe",
        metavar: "F",
        doc: "fringe size (default 4); 0 = unbounded",
        set: |d, v| d.fringe = parse_num(v, "--fringe"),
    },
    Opt {
        name: "--memory-budget",
        metavar: "BYTES",
        doc: "hard cap on tracked-state memory (default: unlimited);\nat the cap, admissions shed the weakest tracked\nitemsets instead of growing (watch estimator.mem_bytes\nand estimator.shed_events under --stats)",
        set: |d, v| d.memory_budget = Some(parse_num(v, "--memory-budget")),
    },
    Opt {
        name: "--seed",
        metavar: "N",
        doc: "hash seed (default 42)",
        set: |d, v| d.seed = parse_num(v, "--seed"),
    },
    Opt {
        name: "--threads",
        metavar: "N",
        doc: "ingestion shards (default 1); N > 1 parses and ingests\nin parallel with results identical to N = 1; with\n--query-file, spreads the catalog's queries over N lanes",
        set: |d, v| d.threads = parse_num(v, "--threads"),
    },
    Opt {
        name: "--watch",
        metavar: "N",
        doc: "print a progress line every N rows",
        set: |d, v| d.watch = Some(parse_num(v, "--watch")),
    },
    Opt {
        name: "--stats",
        metavar: "",
        doc: "print the internal metrics report on stderr at exit\n(counter glossary: DESIGN.md §8.2)",
        set: |d, _| d.stats = true,
    },
    Opt {
        name: "--stats-interval",
        metavar: "N",
        doc: "emit a metrics snapshot on stderr every N rows\n(see --stats-format)",
        set: |d, v| d.stats_interval = Some(parse_num(v, "--stats-interval")),
    },
    Opt {
        name: "--stats-format",
        metavar: "F",
        doc: "influx (line protocol, default) | prom (Prometheus\ntext exposition) for --stats-interval emissions",
        set: |d, v| {
            d.stats_format = match v {
                "influx" => StatsFormat::Influx,
                "prom" => StatsFormat::Prom,
                other => die(&format!("unknown stats format {other:?}")),
            }
        },
    },
    Opt {
        name: "--trace-out",
        metavar: "FILE",
        doc: "drain the trace event journal to FILE as JSONL at exit\n(event schema: DESIGN.md §8.3)",
        set: |d, v| d.trace_out = Some(v.to_owned()),
    },
    Opt {
        name: "--trace-buffer",
        metavar: "N",
        doc: "trace journal capacity in events (default 65536); the\nring keeps the most recent N",
        set: |d, v| d.trace_buffer = parse_num(v, "--trace-buffer"),
    },
    Opt {
        name: "--audit",
        metavar: "N",
        doc: "every N rows, audit the estimate against exact ground\ntruth and report relative error on stderr (needs\n--threads 1; see --audit-sample)",
        set: |d, v| d.audit = Some(parse_num(v, "--audit")),
    },
    Opt {
        name: "--audit-sample",
        metavar: "K",
        doc: "shadow one in K itemsets exactly during --audit\n(default 1 = all; >1 trades memory for sampling noise)",
        set: |d, v| d.audit_sample = parse_num(v, "--audit-sample"),
    },
    Opt {
        name: "--save",
        metavar: "FILE",
        doc: "write a snapshot of the estimator state on exit",
        set: |d, v| d.save = Some(v.to_owned()),
    },
    Opt {
        name: "--resume",
        metavar: "FILE",
        doc: "restore estimator state from a snapshot before reading",
        set: |d, v| d.resume = Some(v.to_owned()),
    },
    Opt {
        name: "--query-file",
        metavar: "FILE",
        doc: "evaluate a catalog of queries (one per line) in a single\npass; replaces --lhs/--rhs, shares one hashing stage and\none --memory-budget across all queries (header comment\nin src/main.rs documents the line grammar)",
        set: |d, v| d.query_file = Some(v.to_owned()),
    },
];

/// The usage text, generated from [`OPTIONS`].
fn usage() -> &'static str {
    static USAGE: OnceLock<String> = OnceLock::new();
    USAGE.get_or_init(|| {
        let left = |o: &Opt| {
            if o.metavar.is_empty() {
                o.name.to_string()
            } else {
                format!("{} {}", o.name, o.metavar)
            }
        };
        let width = OPTIONS
            .iter()
            .map(|o| left(o).len())
            .max()
            .unwrap_or(0)
            .max("FILE".len());
        let mut out = String::from(
            "implicate — streaming implication-count statistics (NIPS/CI, ICDE 2005)\n\n\
             usage: implicate --lhs COLS --rhs COLS [options] [FILE]\n\n",
        );
        for o in OPTIONS {
            let mut lines = o.doc.lines();
            let first = lines.next().unwrap_or("");
            out.push_str(&format!("  {:<width$}  {first}\n", left(o)));
            for line in lines {
                out.push_str(&format!("  {:<width$}  {line}\n", ""));
            }
        }
        out.push_str(&format!(
            "  {:<width$}  input path (default: stdin)",
            "FILE"
        ));
        out
    })
}

/// Parsed and validated command line. In catalog mode (`--query-file`),
/// `lhs`/`rhs` are empty and `queries` holds the parsed catalog.
struct Cli {
    lhs: Vec<usize>,
    rhs: Vec<usize>,
    queries: Vec<QuerySpec>,
    config: EstimatorConfig,
    complement: bool,
    delimiter: Option<char>,
    threads: usize,
    watch: Option<u64>,
    stats: bool,
    stats_interval: Option<u64>,
    stats_format: StatsFormat,
    trace_out: Option<String>,
    trace_buffer: usize,
    audit: Option<u64>,
    audit_sample: u64,
    save: Option<String>,
    resume: Option<String>,
    input: Option<String>,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{}", usage());
    exit(2)
}

fn parse_cols(raw: &str) -> Vec<usize> {
    raw.split(',')
        .map(|c| {
            c.trim()
                .parse()
                .unwrap_or_else(|_| die(&format!("bad column {c:?}")))
        })
        .collect()
}

fn parse_num<T: std::str::FromStr>(raw: &str, key: &str) -> T {
    raw.parse().unwrap_or_else(|_| die(&format!("bad {key}")))
}

fn parse_cli() -> Cli {
    let mut draft = CliDraft::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{}", usage());
                exit(0);
            }
            name if name.starts_with("--") => {
                let opt = OPTIONS
                    .iter()
                    .find(|o| o.name == name)
                    .unwrap_or_else(|| die(&format!("unknown option {name}")));
                let value = if opt.metavar.is_empty() {
                    String::new()
                } else {
                    args.next()
                        .unwrap_or_else(|| die(&format!("{name} needs a value")))
                };
                (opt.set)(&mut draft, &value);
            }
            path => {
                if draft.input.replace(path.to_owned()).is_some() {
                    die("more than one input file");
                }
            }
        }
    }
    draft.finish()
}

impl CliDraft {
    /// Validates the draft and assembles the estimator configuration.
    fn finish(self) -> Cli {
        let (lhs, rhs, queries) = if let Some(path) = &self.query_file {
            if self.lhs.is_some() || self.rhs.is_some() {
                die("--query-file replaces --lhs/--rhs");
            }
            if self.save.is_some() || self.resume.is_some() {
                die("--save/--resume are not supported with --query-file");
            }
            if self.complement {
                die("--complement is per-query in a query file (use the `complement` option)");
            }
            (Vec::new(), Vec::new(), parse_query_file(path))
        } else {
            let lhs = self.lhs.unwrap_or_else(|| die("--lhs is required"));
            let rhs = self.rhs.unwrap_or_else(|| die("--rhs is required"));
            (lhs, rhs, Vec::new())
        };
        if !(0.0..=100.0).contains(&self.confidence) {
            die("--confidence must be in [0, 100]");
        }
        if !self.bitmaps.is_power_of_two() {
            die("--bitmaps must be a power of two");
        }
        if self.threads == 0 {
            die("--threads must be at least 1");
        }
        if self.stats_interval == Some(0) {
            die("--stats-interval must be at least 1");
        }
        if self.trace_buffer == 0 {
            die("--trace-buffer must be at least 1");
        }
        if self.audit == Some(0) {
            die("--audit must be at least 1");
        }
        if self.audit_sample == 0 {
            die("--audit-sample must be at least 1");
        }
        if self.audit.is_some() && self.threads > 1 {
            // The audit compares an exact prefix count against the live
            // estimate at an exact row boundary; sharded ingestion would
            // need a pipeline barrier per audit to make that meaningful.
            die("--audit requires --threads 1");
        }
        let cond = ImplicationConditions::builder()
            .max_multiplicity(self.max_mult)
            .min_support(self.support)
            .top_confidence(self.top_c.unwrap_or(self.max_mult), self.confidence / 100.0)
            .multiplicity_policy(self.policy)
            .build();
        let fringe = match self.fringe {
            0 => Fringe::Unbounded,
            f => Fringe::Bounded(f),
        };
        if self.memory_budget == Some(0) {
            die("--memory-budget must be at least 1 byte");
        }
        let mut config = EstimatorConfig::new(cond)
            .bitmaps(self.bitmaps)
            .fringe(fringe)
            .seed(self.seed);
        if let Some(bytes) = self.memory_budget {
            let floor = config.construction_floor();
            if bytes < floor {
                die(&format!(
                    "--memory-budget {bytes} is below the smallest enforceable budget \
                     for this configuration: {floor} bytes ({m} initial arena tables; \
                     lower --bitmaps or raise the budget)",
                    m = self.bitmaps * 2,
                ));
            }
            config = config.memory_budget(bytes);
        }
        Cli {
            lhs,
            rhs,
            queries,
            config,
            complement: self.complement,
            delimiter: self.delimiter,
            threads: self.threads,
            watch: self.watch,
            stats: self.stats,
            stats_interval: self.stats_interval,
            stats_format: self.stats_format,
            trace_out: self.trace_out,
            trace_buffer: self.trace_buffer,
            audit: self.audit,
            audit_sample: self.audit_sample,
            save: self.save,
            resume: self.resume,
            input: self.input,
        }
    }
}

/// Seed of the hasher folding raw text fields into 64-bit fingerprints
/// (rows and `where=` literals must agree, so it is fixed).
const FIELD_HASHER_SEED: u64 = implicate::spec::FIELD_HASHER_SEED;

/// Reads and parses a `--query-file` (line grammar: `implicate::spec`).
fn parse_query_file(path: &str) -> Vec<QuerySpec> {
    let body = std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    implicate::spec::parse_query_file(&body).unwrap_or_else(|e| die(&format!("{path}: {e}")))
}

/// Exact reference counters for one query during `--audit`.
struct CatalogAudit {
    exact: ExactCounter,
    buf_a: Vec<u64>,
    buf_b: Vec<u64>,
}

impl CatalogAudit {
    fn observe(&mut self, q: &QuerySpec, t: &Tuple) {
        if !q.query.filter.is_empty() && !q.query.filter.matches(t) {
            return;
        }
        self.buf_a.clear();
        self.buf_b.clear();
        self.buf_a.extend(q.lhs_cols.iter().map(|&c| t.get(c)));
        self.buf_b.extend(q.rhs_cols.iter().map(|&c| t.get(c)));
        self.exact.update(&self.buf_a, &self.buf_b);
    }

    fn answer(&self, kind: QueryKind) -> f64 {
        match kind {
            QueryKind::DistinctCount => self.exact.exact_f0_sup() as f64,
            QueryKind::Implication => self.exact.exact_implication_count() as f64,
            QueryKind::Complement => self.exact.exact_non_implication_count() as f64,
        }
    }
}

/// Catalog mode: registers every `--query-file` query in one
/// [`QueryCatalog`] and answers all of them in a single pass. Rows are
/// hashed whole (every column becomes one tuple attribute), batched, and
/// fed query-major; `--watch`, `--stats`, `--stats-interval`, `--audit`
/// and `--trace-out` all operate per query.
fn run_catalog(cli: &Cli) {
    let arity = 1 + cli
        .queries
        .iter()
        .map(|q| q.max_column())
        .max()
        .expect("parse_query_file rejects empty catalogs");
    let schema = Schema::new((0..arity).map(|i| (format!("c{i}"), 0)));

    let mut catalog = QueryCatalog::new(&schema, cli.config);
    if cli.trace_out.is_some() {
        catalog.set_trace(TraceHandle::with_capacity(cli.trace_buffer));
    }
    for q in &cli.queries {
        if let Err(e) = catalog.try_register(q.name.clone(), q.query.clone()) {
            die(&format!("query {:?}: {e}", q.name));
        }
    }
    let ids: Vec<_> = cli
        .queries
        .iter()
        .map(|q| catalog.find(&q.name).expect("just registered"))
        .collect();
    let mut audits: Vec<CatalogAudit> = if cli.audit.is_some() {
        cli.queries
            .iter()
            .map(|q| CatalogAudit {
                exact: ExactCounter::new(q.query.conditions),
                buf_a: Vec::new(),
                buf_b: Vec::new(),
            })
            .collect()
    } else {
        Vec::new()
    };

    let field_hasher = MixHasher::new(FIELD_HASHER_SEED);
    let reader = open_input(cli);
    let mut batch: Vec<Tuple> = Vec::new();
    let mut vals: Vec<u64> = Vec::with_capacity(arity);
    let mut rows = 0u64;
    let mut skipped = 0u64;
    let flush = |catalog: &mut QueryCatalog, batch: &mut Vec<Tuple>| {
        catalog.process_batch(batch);
        batch.clear();
    };
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => die(&format!("read error: {e}")),
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_line(&line, cli.delimiter);
        if fields.len() < arity {
            skipped += 1;
            continue;
        }
        vals.clear();
        vals.extend(
            fields[..arity]
                .iter()
                .map(|f| implicate::text::hash_field(&field_hasher, f)),
        );
        let t = Tuple::new(vals.as_slice());
        if !audits.is_empty() {
            for (q, audit) in cli.queries.iter().zip(&mut audits) {
                audit.observe(q, &t);
            }
        }
        batch.push(t);
        rows += 1;
        if batch.len() >= LINE_BATCH {
            flush(&mut catalog, &mut batch);
        }
        let boundary = |n: Option<u64>| n.is_some_and(|n| rows.is_multiple_of(n));
        if boundary(cli.audit) {
            flush(&mut catalog, &mut batch);
            for ((q, id), audit) in cli.queries.iter().zip(&ids).zip(&audits) {
                let exact = audit.answer(q.query.kind);
                let est = catalog.answer(*id).expect("live query");
                let rel = if exact == 0.0 {
                    if est == 0.0 {
                        0.0
                    } else {
                        f64::INFINITY
                    }
                } else {
                    (exact - est).abs() / exact
                };
                eprintln!(
                    "audit {rows} rows [{}]: exact ≈ {exact:.0}, estimate {est:.0}, \
                     rel error {rel:.4}",
                    q.name
                );
            }
        }
        if boundary(cli.stats_interval) {
            flush(&mut catalog, &mut batch);
            let mut text = String::new();
            catalog.prometheus_into("implicate", &mut text);
            eprintln!("{}", text.trim_end());
        }
        if boundary(cli.watch) {
            flush(&mut catalog, &mut batch);
            for (q, id) in cli.queries.iter().zip(&ids) {
                eprintln!(
                    "{rows} rows [{}]: answer ≈ {:.0} ({} matched)",
                    q.name,
                    catalog.answer(*id).expect("live query"),
                    catalog.matched(*id).expect("live query"),
                );
            }
        }
    }
    flush(&mut catalog, &mut batch);

    for (q, id) in cli.queries.iter().zip(&ids) {
        println!(
            "{}\t{:.0}",
            q.name,
            catalog.answer(*id).expect("live query")
        );
    }
    eprintln!(
        "rows {rows} (skipped {skipped}) | {} queries, one pass | {} tracked bytes on one budget",
        catalog.len(),
        catalog.tracked_bytes()
    );
    if let Some(path) = &cli.trace_out {
        write_trace(path, catalog.trace());
    }
    if cli.stats {
        let mut text = String::new();
        catalog.prometheus_into("implicate", &mut text);
        eprintln!("{}", text.trim_end());
    }
}

/// Catalog mode under `--threads N`: the *queries* are partitioned over
/// N worker lanes ([`ShardedCatalog`]), every lane sees every tuple as a
/// shared pre-hashed batch, and per-query answers stay bit-identical to
/// the single-threaded catalog. The main thread parses and hashes
/// (attribute-wise, once); workers run the per-query combine + estimator
/// passes. `--watch` and `--stats-interval` read per-query published
/// views at settled boundaries (publish, then barrier), so their
/// emissions match the sequential run's numbers exactly.
fn run_catalog_parallel(cli: &Cli) {
    let arity = 1 + cli
        .queries
        .iter()
        .map(|q| q.max_column())
        .max()
        .expect("parse_query_file rejects empty catalogs");
    let schema = Schema::new((0..arity).map(|i| (format!("c{i}"), 0)));

    let mut catalog = QueryCatalog::new(&schema, cli.config);
    if cli.trace_out.is_some() {
        catalog.set_trace(TraceHandle::with_capacity(cli.trace_buffer));
    }
    for q in &cli.queries {
        if let Err(e) = catalog.try_register(q.name.clone(), q.query.clone()) {
            die(&format!("query {:?}: {e}", q.name));
        }
    }
    let ids: Vec<_> = cli
        .queries
        .iter()
        .map(|q| catalog.find(&q.name).expect("just registered"))
        .collect();
    let mut sharded = ShardedCatalog::new(catalog, cli.threads);
    let viewers: Vec<_> = ids
        .iter()
        .map(|id| sharded.reader(*id).expect("live query"))
        .collect();
    let tuple_hasher = sharded.hasher().clone();

    let field_hasher = MixHasher::new(FIELD_HASHER_SEED);
    let reader = open_input(cli);
    let mut hashed = sharded.checkout();
    let mut tuples = hashed.recycle();
    let mut vals: Vec<u64> = Vec::with_capacity(arity);
    let mut rows = 0u64;
    let mut skipped = 0u64;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => die(&format!("read error: {e}")),
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_line(&line, cli.delimiter);
        if fields.len() < arity {
            skipped += 1;
            continue;
        }
        vals.clear();
        vals.extend(
            fields[..arity]
                .iter()
                .map(|f| implicate::text::hash_field(&field_hasher, f)),
        );
        tuples.push(Tuple::new(vals.as_slice()));
        rows += 1;
        let boundary = |n: Option<u64>| n.is_some_and(|n| rows.is_multiple_of(n));
        let at_boundary = boundary(cli.stats_interval) || boundary(cli.watch);
        if tuples.len() >= LINE_BATCH || at_boundary {
            tuple_hasher.hash_batch(std::mem::take(&mut tuples), &mut hashed);
            hashed = sharded.process_hashed(hashed);
            tuples = hashed.recycle();
        }
        if at_boundary {
            // Publish, then barrier: the lanes publish at their message
            // boundary, and the barrier guarantees the views are settled
            // at exactly this row — same numbers as the sequential run.
            sharded.publish();
            sharded.barrier();
        }
        if boundary(cli.stats_interval) {
            for (q, viewer) in cli.queries.iter().zip(&viewers) {
                eprintln!(
                    "implicate_query_tuples{{query=\"{}\"}} {}",
                    q.name,
                    viewer.tuples()
                );
                eprintln!(
                    "implicate_query_answer{{query=\"{}\"}} {}",
                    q.name,
                    q.query.answer_from(&viewer.estimate())
                );
            }
        }
        if boundary(cli.watch) {
            for (q, viewer) in cli.queries.iter().zip(&viewers) {
                eprintln!(
                    "{rows} rows [{}]: answer ≈ {:.0} ({} matched)",
                    q.name,
                    q.query.answer_from(&viewer.estimate()),
                    viewer.tuples(),
                );
            }
        }
    }
    if !tuples.is_empty() {
        tuple_hasher.hash_batch(tuples, &mut hashed);
        let _ = sharded.process_hashed(hashed);
    }
    let catalog = sharded.finish();

    for (q, id) in cli.queries.iter().zip(&ids) {
        println!(
            "{}\t{:.0}",
            q.name,
            catalog.answer(*id).expect("live query")
        );
    }
    eprintln!(
        "rows {rows} (skipped {skipped}) | {} queries over {} lanes, one pass | \
         {} tracked bytes on one budget",
        catalog.len(),
        cli.threads,
        catalog.tracked_bytes()
    );
    if let Some(path) = &cli.trace_out {
        write_trace(path, catalog.trace());
    }
    if cli.stats {
        let mut text = String::new();
        catalog.prometheus_into("implicate", &mut text);
        eprintln!("{}", text.trim_end());
    }
}

/// Hashes the selected columns of a row into fingerprint words. Field
/// hashing is allocation-free (`implicate::text::hash_field`), so steady
/// state touches the heap only when a line out-sizes the reused buffers.
fn project(fields: &[&str], cols: &[usize], hasher: &MixHasher, out: &mut Vec<u64>) -> bool {
    out.clear();
    for &c in cols {
        match fields.get(c) {
            Some(f) => out.push(implicate::text::hash_field(hasher, f)),
            None => return false,
        }
    }
    true
}

/// Splits a line into trimmed fields.
fn split_line(line: &str, delimiter: Option<char>) -> Vec<&str> {
    match delimiter {
        Some(d) => line.split(d).map(str::trim).collect(),
        None => line.split_whitespace().collect(),
    }
}

fn open_input(cli: &Cli) -> Box<dyn BufRead> {
    match &cli.input {
        Some(path) => {
            let file = std::fs::File::open(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
            Box::new(std::io::BufReader::new(file))
        }
        None => Box::new(std::io::stdin().lock()),
    }
}

/// Builds the online accuracy auditor when `--audit` is set, sharing the
/// estimator's trace handle so audit samples land in the same journal.
fn make_auditor(cli: &Cli, est: &ImplicationEstimator) -> Option<AccuracyAuditor> {
    cli.audit.map(|cadence| {
        let mut auditor =
            AccuracyAuditor::new(*cli.config.conditions_ref(), cadence, cli.audit_sample);
        auditor.set_trace(est.trace().clone());
        auditor
    })
}

/// Single-threaded ingestion; returns `(estimator, rows, skipped)`.
fn run_sequential(
    cli: &Cli,
    mut est: ImplicationEstimator,
    field_hasher: &MixHasher,
) -> (ImplicationEstimator, u64, u64) {
    let reader = open_input(cli);
    let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
    let mut auditor = make_auditor(cli, &est);
    let mut rows = 0u64;
    let mut skipped = 0u64;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => die(&format!("read error: {e}")),
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields = split_line(&line, cli.delimiter);
        let ok = project(&fields, &cli.lhs, field_hasher, &mut buf_a)
            && project(&fields, &cli.rhs, field_hasher, &mut buf_b);
        if !ok {
            skipped += 1;
            continue;
        }
        est.update(&buf_a, &buf_b);
        rows += 1;
        if let Some(aud) = auditor.as_mut() {
            aud.observe(&buf_a, &buf_b);
            if aud.due() {
                let s = aud.audit(est.estimate_now().implication_count);
                eprintln!(
                    "audit {} rows: exact ≈ {:.0}, estimate {:.0}, rel error {:.4}",
                    s.position, s.exact, s.estimated, s.rel_error
                );
            }
        }
        if cli.stats_interval.is_some_and(|n| rows.is_multiple_of(n)) {
            eprintln!("{}", stats_emission(est.metrics(), cli.stats_format));
        }
        if cli.watch.is_some_and(|w| rows.is_multiple_of(w)) {
            let e = est.estimate_now();
            let answer = if cli.complement {
                e.non_implication_count
            } else {
                e.implication_count
            };
            eprintln!(
                "{rows} rows: answer ≈ {answer:.0} (S {:.0}, S̄ {:.0}, F0^sup {:.0})",
                e.implication_count, e.non_implication_count, e.f0_sup
            );
        }
    }
    if let Some(aud) = &auditor {
        match aud.final_error() {
            Some(err) => eprintln!(
                "audit: {} samples over {} rows, {} shadowed itemsets, final rel error {err:.4}",
                aud.samples().len(),
                aud.rows_seen(),
                aud.shadowed_keys(),
            ),
            None => eprintln!(
                "audit: no samples ({} rows < cadence {})",
                aud.rows_seen(),
                aud.cadence()
            ),
        }
    }
    (est, rows, skipped)
}

/// One parser's output for one line batch.
struct ParsedBatch {
    pairs: Vec<(u64, u64)>,
    rows: u64,
    skipped: u64,
}

/// Parallel ingestion: the main thread reads line batches and deals them
/// round-robin to `threads` parser workers; a router thread collects the
/// parsed batches *in dealing order* — restoring stream order — and
/// feeds a [`ShardedEstimator`], which preserves per-bitmap update order
/// (see the `imp_core::parallel` docs). The result is therefore
/// bit-identical to `--threads 1`. `--watch` reports row counts only in
/// this mode (a mid-stream estimate would force a pipeline barrier).
fn run_parallel(
    cli: &Cli,
    est: ImplicationEstimator,
    field_hasher: &MixHasher,
) -> (ImplicationEstimator, u64, u64) {
    let threads = cli.threads;
    let sharded = ShardedEstimator::new(est, threads);
    let pair_hasher = sharded.pair_hasher();
    let field_hasher = *field_hasher;
    let reader = open_input(cli);
    std::thread::scope(|scope| {
        let mut line_txs = Vec::with_capacity(threads);
        let mut parsed_rxs = Vec::with_capacity(threads);
        for _ in 0..threads {
            let (line_tx, line_rx) = sync_channel::<Vec<String>>(PIPE_DEPTH);
            let (parsed_tx, parsed_rx) = sync_channel::<ParsedBatch>(PIPE_DEPTH);
            line_txs.push(line_tx);
            parsed_rxs.push(parsed_rx);
            let (lhs, rhs, delimiter) = (&cli.lhs, &cli.rhs, cli.delimiter);
            scope.spawn(move || {
                let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
                while let Ok(lines) = line_rx.recv() {
                    let mut out = ParsedBatch {
                        pairs: Vec::with_capacity(lines.len()),
                        rows: 0,
                        skipped: 0,
                    };
                    for line in &lines {
                        if line.is_empty() || line.starts_with('#') {
                            continue;
                        }
                        let fields = split_line(line, delimiter);
                        let ok = project(&fields, lhs, &field_hasher, &mut buf_a)
                            && project(&fields, rhs, &field_hasher, &mut buf_b);
                        if !ok {
                            out.skipped += 1;
                            continue;
                        }
                        out.pairs.push(pair_hasher.hash_pair(&buf_a, &buf_b));
                        out.rows += 1;
                    }
                    if parsed_tx.send(out).is_err() {
                        return;
                    }
                }
            });
        }
        let watch = cli.watch;
        let stats_interval = cli.stats_interval;
        let stats_format = cli.stats_format;
        let router = scope.spawn(move || {
            let mut sharded = sharded;
            let viewer = (watch.is_some() || stats_interval.is_some()).then(|| sharded.reader());
            let (mut rows, mut skipped) = (0u64, 0u64);
            'drain: loop {
                // Same cyclic order the reader deals batches in, so
                // pairs reach the shards in stream order.
                for parsed_rx in &parsed_rxs {
                    let Ok(batch) = parsed_rx.recv() else {
                        break 'drain;
                    };
                    let before = rows;
                    sharded.update_hashed_batch(&batch.pairs);
                    rows += batch.rows;
                    skipped += batch.skipped;
                    if let Some(n) = stats_interval {
                        if rows / n > before / n {
                            // Publish a fresh view instead of barriering:
                            // the lanes keep ingesting, and the emission
                            // carries the view.* gauges (epoch, published
                            // tuples, age) that say exactly how far the
                            // published prefix trails the routed stream.
                            sharded.publish();
                            eprintln!("{}", stats_emission(sharded.metrics(), stats_format));
                        }
                    }
                    if let Some(w) = watch {
                        if rows / w > before / w {
                            sharded.publish();
                            let viewer = viewer.as_ref().expect("reader created");
                            let e = viewer.estimate();
                            eprintln!(
                                "{rows} rows routed, {} applied: S ≈ {:.0}, S̄ ≈ {:.0}, \
                                 F0^sup ≈ {:.0}",
                                viewer.tuples(),
                                e.implication_count,
                                e.non_implication_count,
                                e.f0_sup
                            );
                        }
                    }
                }
            }
            (sharded.finish(), rows, skipped)
        });
        let mut batch = Vec::with_capacity(LINE_BATCH);
        let mut dealt = 0usize;
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(e) => die(&format!("read error: {e}")),
            };
            batch.push(line);
            if batch.len() >= LINE_BATCH {
                let full = std::mem::replace(&mut batch, Vec::with_capacity(LINE_BATCH));
                if line_txs[dealt % threads].send(full).is_err() {
                    break;
                }
                dealt += 1;
            }
        }
        if !batch.is_empty() {
            let _ = line_txs[dealt % threads].send(batch);
        }
        drop(line_txs);
        router.join().expect("router thread panicked")
    })
}

/// Writes the trace journal as JSONL. With the `trace` feature compiled
/// out the file still appears, holding only the `journal_summary` line
/// with `"enabled":false` — scripts can rely on the file existing.
fn write_trace(path: &str, trace: &TraceHandle) {
    let body = match trace.journal() {
        Some(journal) => journal.to_jsonl(),
        None => format!(
            "{{\"event\":\"journal_summary\",\"enabled\":{},\"recorded\":0,\
             \"retained\":0,\"dropped\":0,\"capacity\":0}}\n",
            TraceHandle::enabled()
        ),
    };
    std::fs::write(path, &body).unwrap_or_else(|e| die(&format!("{path}: {e}")));
    let events = body.lines().count().saturating_sub(1);
    eprintln!("trace: wrote {events} events to {path}");
}

fn main() {
    let cli = parse_cli();
    if !cli.queries.is_empty() {
        if cli.threads > 1 {
            run_catalog_parallel(&cli);
        } else {
            run_catalog(&cli);
        }
        return;
    }
    let mut est = match &cli.resume {
        Some(path) => {
            let raw = std::fs::read(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
            ImplicationEstimator::from_bytes(bytes::Bytes::from(raw))
                .unwrap_or_else(|e| die(&format!("{path}: {e}")))
        }
        None => cli.config.build(),
    };
    if cli.resume.is_some() && est.conditions() != cli.config.conditions_ref() {
        die("snapshot was built with different implication conditions");
    }
    if cli.resume.is_some() {
        // A snapshot restores against an unlimited budget; re-arm the
        // requested ceiling before ingestion continues.
        est.set_memory_budget(cli.config.memory_budget_limit());
    }
    if cli.trace_out.is_some() {
        est.set_trace(TraceHandle::with_capacity(cli.trace_buffer));
    }

    let field_hasher = MixHasher::new(FIELD_HASHER_SEED);
    let (est, rows, skipped) = if cli.threads > 1 {
        run_parallel(&cli, est, &field_hasher)
    } else {
        run_sequential(&cli, est, &field_hasher)
    };

    let e = est.estimate_now();
    let answer = if cli.complement {
        e.non_implication_count
    } else {
        e.implication_count
    };
    println!("{answer:.0}");
    eprintln!(
        "rows {rows} (skipped {skipped}) | conditions {} | S ≈ {:.0}, S̄ ≈ {:.0}, \
         F0^sup ≈ {:.0} | {} tracking entries",
        est.conditions(),
        e.implication_count,
        e.non_implication_count,
        e.f0_sup,
        est.entries()
    );
    if let Some(path) = &cli.save {
        let bytes = est.to_bytes();
        let mut f = std::fs::File::create(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        f.write_all(&bytes)
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        eprintln!("snapshot: wrote {} bytes to {path}", bytes.len());
    }
    // After --save, so the journal includes the snapshot-encode span and
    // the report the encode counters.
    if let Some(path) = &cli.trace_out {
        write_trace(path, est.trace());
    }
    if cli.stats {
        eprintln!("{}", est.metrics().report().trim_end());
    }
}
