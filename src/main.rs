//! `implicate` — command-line implication statistics over delimited
//! streams.
//!
//! Reads rows from a file or stdin, projects two column sets, and
//! maintains a NIPS/CI implication-count estimate online:
//!
//! ```text
//! # how many sources (col 0) stick to a single destination (col 1)?
//! implicate --lhs 0 --rhs 1 < traffic.csv
//!
//! # destinations contacted by >100 sources, reported every 100k rows
//! implicate --lhs 1 --rhs 0 --max-mult 100 --complement --watch 100000
//!
//! # checkpoint / resume across restarts
//! implicate --lhs 0 --rhs 1 --save state.imps
//! implicate --lhs 0 --rhs 1 --resume state.imps --save state.imps
//! ```
//!
//! Fields are treated as opaque strings (hashed to 64-bit fingerprints),
//! so the tool works on IPs, URLs or numeric ids alike.

use std::io::{BufRead, Write};
use std::process::exit;

use implicate::sketch::hash::{Hasher64, MixHasher};
use implicate::{ImplicationConditions, ImplicationEstimator, MultiplicityPolicy};

const USAGE: &str = "\
implicate — streaming implication-count statistics (NIPS/CI, ICDE 2005)

usage: implicate --lhs COLS --rhs COLS [options] [FILE]

  --lhs COLS         comma-separated 0-based columns forming the counted
                     itemset A (e.g. --lhs 0 or --lhs 0,2)
  --rhs COLS         columns forming the implied itemset B
  --max-mult K       maximum multiplicity (default 1)
  --support N        minimum absolute support σ (default 1)
  --top-c C          the c of the top-confidence level (default = K)
  --confidence P     minimum top-c confidence in percent (default 100)
  --policy P         strict | tracktop (default strict)
  --complement       report the non-implication count S̄ instead of S
  --delimiter C      field delimiter (default: any whitespace; e.g. ',')
  --bitmaps M        stochastic-averaging bitmaps, power of two (default 64)
  --fringe F         fringe size (default 4); 0 = unbounded
  --seed N           hash seed (default 42)
  --watch N          print a progress line every N rows
  --save FILE        write a snapshot of the estimator state on exit
  --resume FILE      restore estimator state from a snapshot before reading
  FILE               input path (default: stdin)";

struct Cli {
    lhs: Vec<usize>,
    rhs: Vec<usize>,
    cond: ImplicationConditions,
    complement: bool,
    delimiter: Option<char>,
    bitmaps: usize,
    fringe: u32,
    seed: u64,
    watch: Option<u64>,
    save: Option<String>,
    resume: Option<String>,
    input: Option<String>,
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}\n\n{USAGE}");
    exit(2)
}

fn parse_cols(raw: &str) -> Vec<usize> {
    raw.split(',')
        .map(|c| {
            c.trim()
                .parse()
                .unwrap_or_else(|_| die(&format!("bad column {c:?}")))
        })
        .collect()
}

fn parse_cli() -> Cli {
    let mut args = std::env::args().skip(1);
    let mut lhs = None;
    let mut rhs = None;
    let mut max_mult: u32 = 1;
    let mut support: u64 = 1;
    let mut top_c: Option<u32> = None;
    let mut confidence: f64 = 100.0;
    let mut policy = MultiplicityPolicy::Strict;
    let mut complement = false;
    let mut delimiter = None;
    let mut bitmaps = 64usize;
    let mut fringe = 4u32;
    let mut seed = 42u64;
    let mut watch = None;
    let mut save = None;
    let mut resume = None;
    let mut input = None;
    let value = |args: &mut dyn Iterator<Item = String>, key: &str| -> String {
        args.next()
            .unwrap_or_else(|| die(&format!("{key} needs a value")))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                exit(0);
            }
            "--lhs" => lhs = Some(parse_cols(&value(&mut args, "--lhs"))),
            "--rhs" => rhs = Some(parse_cols(&value(&mut args, "--rhs"))),
            "--max-mult" => {
                max_mult = value(&mut args, "--max-mult")
                    .parse()
                    .unwrap_or_else(|_| die("bad --max-mult"));
            }
            "--support" => {
                support = value(&mut args, "--support")
                    .parse()
                    .unwrap_or_else(|_| die("bad --support"));
            }
            "--top-c" => {
                top_c = Some(
                    value(&mut args, "--top-c")
                        .parse()
                        .unwrap_or_else(|_| die("bad --top-c")),
                );
            }
            "--confidence" => {
                confidence = value(&mut args, "--confidence")
                    .parse()
                    .unwrap_or_else(|_| die("bad --confidence"));
            }
            "--policy" => {
                policy = match value(&mut args, "--policy").as_str() {
                    "strict" => MultiplicityPolicy::Strict,
                    "tracktop" => MultiplicityPolicy::TrackTop,
                    other => die(&format!("unknown policy {other:?}")),
                };
            }
            "--complement" => complement = true,
            "--delimiter" => {
                let d = value(&mut args, "--delimiter");
                let mut chars = d.chars();
                delimiter = chars.next();
                if delimiter.is_none() || chars.next().is_some() {
                    die("--delimiter must be a single character");
                }
            }
            "--bitmaps" => {
                bitmaps = value(&mut args, "--bitmaps")
                    .parse()
                    .unwrap_or_else(|_| die("bad --bitmaps"));
            }
            "--fringe" => {
                fringe = value(&mut args, "--fringe")
                    .parse()
                    .unwrap_or_else(|_| die("bad --fringe"));
            }
            "--seed" => {
                seed = value(&mut args, "--seed")
                    .parse()
                    .unwrap_or_else(|_| die("bad --seed"));
            }
            "--watch" => {
                watch = Some(
                    value(&mut args, "--watch")
                        .parse()
                        .unwrap_or_else(|_| die("bad --watch")),
                );
            }
            "--save" => save = Some(value(&mut args, "--save")),
            "--resume" => resume = Some(value(&mut args, "--resume")),
            other if other.starts_with("--") => die(&format!("unknown option {other}")),
            path => {
                if input.replace(path.to_owned()).is_some() {
                    die("more than one input file");
                }
            }
        }
    }
    let lhs = lhs.unwrap_or_else(|| die("--lhs is required"));
    let rhs = rhs.unwrap_or_else(|| die("--rhs is required"));
    if !(0.0..=100.0).contains(&confidence) {
        die("--confidence must be in [0, 100]");
    }
    if !bitmaps.is_power_of_two() {
        die("--bitmaps must be a power of two");
    }
    let cond = ImplicationConditions::builder()
        .max_multiplicity(max_mult)
        .min_support(support)
        .top_confidence(top_c.unwrap_or(max_mult), confidence / 100.0)
        .multiplicity_policy(policy)
        .build();
    Cli {
        lhs,
        rhs,
        cond,
        complement,
        delimiter,
        bitmaps,
        fringe,
        seed,
        watch,
        save,
        resume,
        input,
    }
}

/// Hashes the selected columns of a row into fingerprint words.
fn project(fields: &[&str], cols: &[usize], hasher: &MixHasher, out: &mut Vec<u64>) -> bool {
    out.clear();
    for &c in cols {
        match fields.get(c) {
            Some(f) => out.push(
                hasher.hash_slice(
                    &f.as_bytes()
                        .chunks(8)
                        .map(|ch| {
                            let mut w = [0u8; 8];
                            w[..ch.len()].copy_from_slice(ch);
                            u64::from_le_bytes(w) ^ ch.len() as u64
                        })
                        .collect::<Vec<u64>>(),
                ),
            ),
            None => return false,
        }
    }
    true
}

fn main() {
    let cli = parse_cli();
    let mut est = match &cli.resume {
        Some(path) => {
            let raw = std::fs::read(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
            ImplicationEstimator::from_bytes(bytes::Bytes::from(raw))
                .unwrap_or_else(|e| die(&format!("{path}: {e}")))
        }
        None => {
            if cli.fringe == 0 {
                ImplicationEstimator::new_unbounded(cli.cond, cli.bitmaps, cli.seed)
            } else {
                ImplicationEstimator::new(cli.cond, cli.bitmaps, cli.fringe, cli.seed)
            }
        }
    };
    if cli.resume.is_some() && est.conditions() != &cli.cond {
        die("snapshot was built with different implication conditions");
    }

    let field_hasher = MixHasher::new(0x00f1_e1d5);
    let stdin;
    let file;
    let reader: Box<dyn BufRead> = match &cli.input {
        Some(path) => {
            file = std::fs::File::open(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
            Box::new(std::io::BufReader::new(file))
        }
        None => {
            stdin = std::io::stdin();
            Box::new(stdin.lock())
        }
    };

    let (mut buf_a, mut buf_b) = (Vec::new(), Vec::new());
    let mut rows = 0u64;
    let mut skipped = 0u64;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => die(&format!("read error: {e}")),
        };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = match cli.delimiter {
            Some(d) => line.split(d).map(str::trim).collect(),
            None => line.split_whitespace().collect(),
        };
        if !project(&fields, &cli.lhs, &field_hasher, &mut buf_a)
            || !project(&fields, &cli.rhs, &field_hasher, &mut buf_b)
        {
            skipped += 1;
            continue;
        }
        est.update(&buf_a, &buf_b);
        rows += 1;
        if cli.watch.is_some_and(|w| rows.is_multiple_of(w)) {
            let e = est.estimate();
            let answer = if cli.complement {
                e.non_implication_count
            } else {
                e.implication_count
            };
            eprintln!(
                "{rows} rows: answer ≈ {answer:.0} (S {:.0}, S̄ {:.0}, F0^sup {:.0})",
                e.implication_count, e.non_implication_count, e.f0_sup
            );
        }
    }

    let e = est.estimate();
    let answer = if cli.complement {
        e.non_implication_count
    } else {
        e.implication_count
    };
    println!("{answer:.0}");
    eprintln!(
        "rows {rows} (skipped {skipped}) | conditions {} | S ≈ {:.0}, S̄ ≈ {:.0}, \
         F0^sup ≈ {:.0} | {} tracking entries",
        est.conditions(),
        e.implication_count,
        e.non_implication_count,
        e.f0_sup,
        est.entries()
    );
    if let Some(path) = &cli.save {
        let bytes = est.to_bytes();
        let mut f = std::fs::File::create(path).unwrap_or_else(|e| die(&format!("{path}: {e}")));
        f.write_all(&bytes)
            .unwrap_or_else(|e| die(&format!("{path}: {e}")));
        eprintln!("snapshot: wrote {} bytes to {path}", bytes.len());
    }
}
