//! Hashing of delimited text fields into itemset fingerprint words.
//!
//! The CLI treats fields as opaque byte strings. Each field is packed
//! into 8-byte little-endian words (the trailing chunk zero-padded and
//! length-tagged so `"a"` and `"a\0"` differ) and folded through the
//! estimator's [`Hasher64`] slice-chaining scheme — without materializing
//! the word slice, so hashing a field performs no heap allocation
//! regardless of field length.

use imp_sketch::hash::Hasher64;

/// The empty-slice sentinel of [`Hasher64::hash_slice`].
const EMPTY_SENTINEL: u64 = 0x9e37_79b9_7f4a_7c15;

/// Packs one ≤ 8-byte chunk into a length-tagged little-endian word.
#[inline]
fn pack_chunk(chunk: &[u8]) -> u64 {
    let mut w = [0u8; 8];
    w[..chunk.len()].copy_from_slice(chunk);
    u64::from_le_bytes(w) ^ chunk.len() as u64
}

/// Hashes a text field to a single fingerprint word, allocation-free.
///
/// Produces exactly `hasher.hash_slice(&words)` where `words` is the
/// field's packed chunk sequence — so fingerprints are interchangeable
/// with those of callers that materialize the words.
pub fn hash_field<H: Hasher64 + ?Sized>(hasher: &H, field: &str) -> u64 {
    let bytes = field.as_bytes();
    let mut chunks = bytes.chunks(8).map(pack_chunk);
    match bytes.len().div_ceil(8) {
        0 => hasher.hash_u64(EMPTY_SENTINEL),
        1 => hasher.hash_u64(chunks.next().expect("one chunk")),
        n => {
            // Mirrors Hasher64::hash_slice's length-dependent chaining.
            let mut acc = hasher.hash_u64(n as u64);
            for word in chunks {
                acc = hasher.hash_u64(acc ^ word);
            }
            acc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imp_sketch::hash::MixHasher;

    /// The materializing reference implementation.
    fn hash_field_alloc(hasher: &MixHasher, field: &str) -> u64 {
        hasher.hash_slice(
            &field
                .as_bytes()
                .chunks(8)
                .map(pack_chunk)
                .collect::<Vec<u64>>(),
        )
    }

    #[test]
    fn matches_materializing_reference() {
        let hasher = MixHasher::new(0x00f1_e1d5);
        let cases = [
            "",
            "a",
            "12345678",
            "123456789",
            "10.0.0.1",
            "https://example.com/some/long/path?q=1",
            "field with spaces and unicode: héllo wörld ✓",
        ];
        for field in cases {
            assert_eq!(
                hash_field(&hasher, field),
                hash_field_alloc(&hasher, field),
                "field {field:?}"
            );
        }
    }

    #[test]
    fn distinct_fields_do_not_collide() {
        let hasher = MixHasher::new(1);
        assert_ne!(hash_field(&hasher, "a"), hash_field(&hasher, "a\0"));
        assert_ne!(hash_field(&hasher, ""), hash_field(&hasher, "\0"));
        assert_ne!(
            hash_field(&hasher, "12345678"),
            hash_field(&hasher, "123456780")
        );
    }
}
